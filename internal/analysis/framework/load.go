package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked target package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	// ImportMap rewrites import paths as the build would (stdlib
	// vendoring: "golang.org/x/net/..." inside net is really
	// "vendor/golang.org/x/net/...").
	ImportMap map[string]string
	Error     *struct{ Err string }
}

// Load lists the packages matching patterns (relative to dir) with the
// go tool and type-checks them — and their whole dependency graph,
// stdlib included — from source. It needs no network and no module
// cache beyond what the go toolchain ships. Only the matched packages
// come back; dependencies are type-checked with function bodies skipped
// and discarded.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	typed := map[string]*types.Package{"unsafe": types.Unsafe}
	var out []*Package
	for _, lp := range pkgs {
		if lp.Name == "" || lp.ImportPath == "unsafe" {
			// "unsafe" must stay the magic types.Unsafe package; checking
			// its source stub would shadow the builtin special-casing.
			continue
		}
		p, err := typecheck(fset, lp, typed)
		if err != nil {
			return nil, err
		}
		if !lp.DepOnly {
			out = append(out, p)
		}
	}
	return out, nil
}

// listPackages runs one `go list -e -json -deps` and returns the
// packages in dependency order (deps before dependents — the order go
// list emits them in).
func listPackages(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout))
	var pkgs []*listPkg
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Error != nil && !lp.DepOnly {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one listed package, reusing (and
// extending) the typed cache. Dependencies get IgnoreFuncBodies; the
// target packages get full types.Info for the analyzers.
func typecheck(fset *token.FileSet, lp *listPkg, typed map[string]*types.Package) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:         mapImporter{m: lp.ImportMap, typed: typed},
		FakeImportC:      true,
		IgnoreFuncBodies: lp.DepOnly,
		Error:            func(error) {}, // collect everything, fail on first below
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	typed[lp.ImportPath] = tpkg
	return &Package{
		Path:  lp.ImportPath,
		Name:  lp.Name,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// mapImporter resolves imports against the already-typed cache, applying
// the importing package's ImportMap first (stdlib vendoring).
type mapImporter struct {
	m     map[string]string
	typed map[string]*types.Package
}

func (mi mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	if p, ok := mi.typed[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %s not yet type-checked (go list dependency order violated?)", path)
}

// LoadTestdata type-checks the package rooted at dir (an analysistest
// testdata/src/<pkg> directory, outside any go list universe). Imports
// are resolved first against sibling directories under srcRoot (local
// stub packages, type-checked recursively), then against the module and
// standard library via one go list call per load.
func LoadTestdata(srcRoot string, pkgPaths ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	typed := map[string]*types.Package{"unsafe": types.Unsafe}

	// Gather the transitive external (non-srcRoot) imports so one go
	// list run can type-check them all, then check locals bottom-up.
	local := map[string]*localPkg{}
	var externals []string
	seenExt := map[string]bool{}
	var scan func(path string) error
	scan = func(path string) error {
		if _, ok := local[path]; ok {
			return nil
		}
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		files, imports, err := parseDir(fset, dir)
		if err != nil {
			return err
		}
		l := &localPkg{path: path, dir: dir, files: files}
		local[path] = l
		for _, imp := range imports {
			if isLocal(srcRoot, imp) {
				l.localDeps = append(l.localDeps, imp)
				if err := scan(imp); err != nil {
					return err
				}
			} else if !seenExt[imp] {
				seenExt[imp] = true
				externals = append(externals, imp)
			}
		}
		return nil
	}
	for _, p := range pkgPaths {
		if err := scan(p); err != nil {
			return nil, err
		}
	}

	if len(externals) > 0 {
		sort.Strings(externals)
		// srcRoot lives inside the module, so go list resolves module
		// and stdlib import paths from there.
		ext, err := listPackages(srcRoot, externals)
		if err != nil {
			return nil, err
		}
		for _, lp := range ext {
			if lp.Name == "" || lp.ImportPath == "unsafe" {
				continue
			}
			if _, err := typecheck(fset, lp, typed); err != nil {
				return nil, err
			}
		}
	}

	// Type-check locals in dependency order.
	var out []*Package
	checked := map[string]*Package{}
	want := map[string]bool{}
	for _, p := range pkgPaths {
		want[p] = true
	}
	var check func(path string) (*Package, error)
	check = func(path string) (*Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		l := local[path]
		for _, dep := range l.localDeps {
			if _, err := check(dep); err != nil {
				return nil, err
			}
		}
		lp := &listPkg{ImportPath: path, Name: l.files[0].Name.Name, Dir: l.dir, DepOnly: !want[path]}
		p, err := typecheckFiles(fset, lp, l.files, typed)
		if err != nil {
			return nil, err
		}
		checked[path] = p
		return p, nil
	}
	for _, p := range pkgPaths {
		pkg, err := check(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

type localPkg struct {
	path      string
	dir       string
	files     []*ast.File
	localDeps []string
}

// isLocal reports whether import path imp resolves to a directory under
// srcRoot (the analysistest local-stub convention).
func isLocal(srcRoot, imp string) bool {
	st, err := os.Stat(filepath.Join(srcRoot, filepath.FromSlash(imp)))
	return err == nil && st.IsDir()
}

// parseDir parses every non-test .go file of dir and returns the files
// plus their union of imports.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	seen := map[string]bool{}
	var imports []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path := importPath(imp)
			if !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, imports, nil
}

func importPath(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	return s[1 : len(s)-1]
}

// typecheckFiles is typecheck for already-parsed files (testdata
// locals, which have no go list entry).
func typecheckFiles(fset *token.FileSet, lp *listPkg, files []*ast.File, typed map[string]*types.Package) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:    mapImporter{typed: typed},
		FakeImportC: true,
		Error:       func(error) {},
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	typed[lp.ImportPath] = tpkg
	return &Package{
		Path:  lp.ImportPath,
		Name:  lp.Name,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
