// Package framework is a self-contained miniature of
// golang.org/x/tools/go/analysis: an Analyzer runs over one
// type-checked package (a Pass) and reports Diagnostics. The repo
// cannot depend on x/tools (the module is deliberately dependency
// free), so gridmon-vet's analyzers build on this instead; the API
// mirrors go/analysis closely enough that porting them to the real
// multichecker later is mechanical.
//
// Suppression: a comment of the form
//
//	//gridmon:nolint <analyzer>[,<analyzer>...] [reason]
//
// on the offending line, or alone on the line directly above it,
// suppresses those analyzers' diagnostics (a bare //gridmon:nolint
// suppresses every analyzer). The reason is free text and strongly
// encouraged — a suppression without one reads as an accident.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and nolint comments.
	Name string
	// Doc is the one-paragraph description `gridmon-vet -list` prints.
	Doc string
	// Run reports the analyzer's findings on one package via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// nolintRe matches the suppression comment grammar.
var nolintRe = regexp.MustCompile(`^//gridmon:nolint(?:\s+([A-Za-z0-9_,-]+))?`)

// nolintSite is one suppression: a file line plus the analyzer names it
// silences (empty = all).
type nolintSite struct {
	names map[string]bool // nil means every analyzer
	alone bool            // the comment is the only thing on its line
}

// nolintSites extracts the suppressions of one file, keyed by line.
func nolintSites(fset *token.FileSet, f *ast.File) map[int]nolintSite {
	sites := make(map[int]nolintSite)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := nolintRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			site := nolintSite{}
			if m[1] != "" {
				site.names = make(map[string]bool)
				for _, n := range strings.Split(m[1], ",") {
					site.names[n] = true
				}
			}
			pos := fset.Position(c.Pos())
			// A comment that starts its line suppresses the next line
			// too (the conventional "annotation above the statement"
			// placement).
			site.alone = pos.Column == 1 || onlyWhitespaceBefore(fset, f, c)
			sites[pos.Line] = site
		}
	}
	return sites
}

// onlyWhitespaceBefore reports whether c is the first token on its line
// (an annotation line rather than a trailing comment).
func onlyWhitespaceBefore(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	// Walk the file's comments and declarations is overkill; the file
	// content is not retained, so approximate: a trailing comment
	// usually sits past column 1. Treat column <= 1 handled by caller;
	// otherwise check no declaration starts on that line before the
	// comment column.
	line := pos.Line
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		p := fset.Position(n.Pos())
		if p.Line == line && p.Column < pos.Column {
			if _, isFile := n.(*ast.File); !isFile {
				found = true
			}
		}
		return !found
	})
	return !found
}

// suppressed reports whether d is silenced by a nolint site on its own
// line, or by a standalone nolint comment on the line above.
func suppressed(d Diagnostic, sites map[int]nolintSite) bool {
	match := func(s nolintSite, ok bool) bool {
		if !ok {
			return false
		}
		return s.names == nil || s.names[d.Analyzer]
	}
	if s, ok := sites[d.Pos.Line]; match(s, ok) {
		return true
	}
	if s, ok := sites[d.Pos.Line-1]; ok && s.alone && match(s, true) {
		return true
	}
	return false
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving diagnostics in deterministic (file, line, column, analyzer)
// order. Suppressed findings are dropped here, so analyzers never need
// to know about nolint.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		sites := make(map[string]map[int]nolintSite)
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			sites[name] = nolintSites(pkg.Fset, f)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !suppressed(d, sites[d.Pos.Filename]) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
