package framework

import (
	"go/parser"
	"go/token"
	"testing"
)

// TestLoadModule type-checks a real module package, stdlib dependency
// graph included, without network or a module cache.
func TestLoadModule(t *testing.T) {
	pkgs, err := Load("../../..", "./internal/sim")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Name != "sim" {
		t.Errorf("package name = %q, want sim", p.Name)
	}
	if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
		t.Errorf("package missing types/info/files: %+v", p)
	}
	if len(p.Info.Uses) == 0 {
		t.Error("Info.Uses is empty; full type info expected for targets")
	}
}

const nolintSrc = `package p

func a() int { return 1 } //gridmon:nolint testcheck same-line reason

//gridmon:nolint testcheck annotation above
func b() int { return 2 }

//gridmon:nolint othercheck wrong analyzer
func c() int { return 3 }

//gridmon:nolint
func d() int { return 4 }

func e() int { return 5 }
`

// TestNolintSuppression exercises the suppression grammar: same line,
// line above, name filtering, and the bare form.
func TestNolintSuppression(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", nolintSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sites := nolintSites(fset, f)

	diagAt := func(line int) Diagnostic {
		return Diagnostic{
			Analyzer: "testcheck",
			Pos:      token.Position{Filename: "p.go", Line: line},
		}
	}
	cases := []struct {
		line int
		want bool
	}{
		{3, true},   // a: same-line nolint
		{6, true},   // b: nolint on the line above
		{9, false},  // c: nolint names a different analyzer
		{12, true},  // d: bare nolint silences everything
		{14, false}, // e: no nolint in sight
	}
	for _, tc := range cases {
		if got := suppressed(diagAt(tc.line), sites); got != tc.want {
			t.Errorf("line %d: suppressed = %v, want %v", tc.line, got, tc.want)
		}
	}
}
