// Package analysistest runs an analyzer over testdata packages and
// checks its diagnostics against `// want` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (which the module cannot
// depend on).
//
// Layout: each test package lives at <testdata>/src/<name>/. Imports of
// a bare path that exists under src/ resolve to that local stub;
// everything else resolves through the module/standard library.
//
// Expectations: a comment `// want "re"` (double- or back-quoted Go
// string, several per comment allowed) on a line asserts that the
// analyzer reports diagnostics on that line whose messages match the
// regexps, in order. Lines without a want comment must produce no
// diagnostics.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// expectation is one want regexp at a file line.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads the named packages from testdata/src and applies the
// analyzer, reporting any mismatch between its diagnostics and the
// want comments as test failures.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	loaded, err := framework.LoadTestdata(srcRoot, pkgs...)
	if err != nil {
		t.Fatalf("loading testdata packages %v: %v", pkgs, err)
	}
	diags, err := framework.RunAnalyzers(loaded, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, pkg := range loaded {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					exps, err := parseWant(c.Text)
					if err != nil {
						t.Fatalf("%s: %v", pos, err)
					}
					if len(exps) == 0 {
						continue
					}
					key := posKey(pos)
					wants[key] = append(wants[key], exps...)
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		exps := wants[key]
		found := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: no diagnostic matching %q", key, e.raw)
			}
		}
	}
}

func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// parseWant extracts the quoted regexps of a want comment (nil when the
// comment has none).
func parseWant(text string) ([]*expectation, error) {
	m := wantRe.FindStringSubmatch(text)
	if m == nil {
		return nil, nil
	}
	rest := strings.TrimSpace(m[1])
	var exps []*expectation
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := 1
			for end < len(rest) {
				if rest[end] == '\\' {
					end += 2
					continue
				}
				if rest[end] == '"' {
					break
				}
				end++
			}
			if end >= len(rest) {
				return nil, fmt.Errorf("unterminated want string: %s", rest)
			}
			lit = rest[:end+1]
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want string: %s", rest)
			}
			lit = rest[:end+2]
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, fmt.Errorf("want expects quoted regexps, got: %s", rest)
		}
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want string %s: %v", lit, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", s, err)
		}
		exps = append(exps, &expectation{re: re, raw: s})
	}
	return exps, nil
}
