package ldap

import (
	"math/bits"
	"slices"
	"strings"
)

// The DIT maintains attribute indexes over every entry: each entry gets a
// small integer id, and every (attribute, value) pair keeps a bitset of
// the ids carrying it (the equality index) alongside a presence bitset.
// Add, Upsert and Delete keep the postings current. The filter planner
// below serves equality, presence and >=/<= assertions from these
// postings — candidate sets combine with word-level AND/OR — instead of
// walking the subtree; filters it cannot plan (substring wildcards, NOT)
// fall back to the scan in Search. Range terms are answered by testing
// each *distinct* value of the attribute — O(distinct values) instead of
// O(entries) — with the same ordered() comparison the scan uses, so the
// two paths agree on every entry.
//
// Work accounting: SearchInfo.Visited always reports the logical scan
// cost (the number of entries a subtree walk would examine), identical on
// both paths, so the testbed's CPU model — calibrated against the 2003
// systems, which did scan — is unchanged. IndexHits reports the
// candidates the postings produced when the fast path ran.

// bitset is a growable set of small non-negative ints.
type bitset []uint64

func (b bitset) has(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<uint(i&63)) != 0
}

// with returns b with bit i set, growing as needed.
func (b bitset) with(i int) bitset {
	w := i >> 6
	for len(b) <= w {
		b = append(b, 0)
	}
	b[w] |= 1 << uint(i&63)
	return b
}

func (b bitset) without(i int) {
	w := i >> 6
	if w < len(b) {
		b[w] &^= 1 << uint(i&63)
	}
}

// clone copies b.
func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

// and intersects o into b in place (b is truncated to o's length).
func (b bitset) and(o bitset) bitset {
	if len(o) < len(b) {
		b = b[:len(o)]
	}
	for i := range b {
		b[i] &= o[i]
	}
	return b
}

// or unions o into b, growing as needed.
func (b bitset) or(o bitset) bitset {
	for len(b) < len(o) {
		b = append(b, 0)
	}
	for i, w := range o {
		b[i] |= w
	}
	return b
}

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach calls fn with each set bit in ascending order.
func (b bitset) forEach(fn func(i int)) {
	for wi, w := range b {
		for ; w != 0; w &= w - 1 {
			fn(wi<<6 + bits.TrailingZeros64(w))
		}
	}
}

// posting is the id set for one attribute value (or for presence), with
// its cardinality maintained so empty postings can be dropped.
type posting struct {
	bits bitset
	n    int
}

func (p *posting) add(id int) {
	if !p.bits.has(id) {
		p.bits = p.bits.with(id)
		p.n++
	}
}

func (p *posting) remove(id int) {
	if p.bits.has(id) {
		p.bits.without(id)
		p.n--
	}
}

// attrIndex holds the postings for one attribute.
type attrIndex struct {
	// values maps a lowercased attribute value to the entries carrying it.
	values map[string]*posting
	// present holds the entries carrying the attribute with >=1 value.
	present posting
}

// SearchInfo describes how a search was answered.
type SearchInfo struct {
	// Visited is the logical scan cost: the number of entries the
	// equivalent subtree walk examines. It is identical whether or not
	// the index served the query, so simulation work accounting is
	// independent of the execution strategy.
	Visited int
	// IndexHits counts the candidate entries the index postings produced
	// (before subtree restriction and verification); zero on the scan
	// path.
	IndexHits int
	// Scanned reports that the filter fell back to the subtree walk.
	Scanned bool
}

// allocID assigns an entry id, reusing freed slots so long-lived trees
// with churn (a GIIS expiring registrations) keep their bitsets compact.
func (t *DIT) allocID(key string, e *Entry) int {
	var id int
	if n := len(t.freeIDs); n > 0 {
		id = t.freeIDs[n-1]
		t.freeIDs = t.freeIDs[:n-1]
		t.byID[id] = e
		t.keyByID[id] = key
	} else {
		id = len(t.byID)
		t.byID = append(t.byID, e)
		t.keyByID = append(t.keyByID, key)
	}
	t.ids[key] = id
	return id
}

func (t *DIT) freeID(key string) {
	id, ok := t.ids[key]
	if !ok {
		return
	}
	delete(t.ids, key)
	t.byID[id] = nil
	t.keyByID[id] = ""
	t.freeIDs = append(t.freeIDs, id)
}

// indexEntry records e's attribute values under id, snapshotting them in
// t.indexed so a later unindex removes exactly what was added even if the
// caller mutated the entry in place afterwards.
func (t *DIT) indexEntry(id int, e *Entry) {
	snap := make(map[string][]string, len(e.order))
	for _, attr := range e.order {
		vals := e.attrs[attr].values
		if len(vals) == 0 {
			continue
		}
		ix := t.idx[attr]
		if ix == nil {
			ix = &attrIndex{values: make(map[string]*posting)}
			t.idx[attr] = ix
		}
		ix.present.add(id)
		lowered := make([]string, len(vals))
		for i, v := range vals {
			lv := strings.ToLower(v)
			lowered[i] = lv
			p := ix.values[lv]
			if p == nil {
				p = &posting{}
				ix.values[lv] = p
			}
			p.add(id)
		}
		snap[attr] = lowered
	}
	t.indexed[id] = snap
}

// unindexEntry removes id's postings using the snapshot taken at index
// time.
func (t *DIT) unindexEntry(id int) {
	snap, ok := t.indexed[id]
	if !ok {
		return
	}
	for attr, vals := range snap {
		ix := t.idx[attr]
		if ix == nil {
			continue
		}
		ix.present.remove(id)
		for _, lv := range vals {
			if p := ix.values[lv]; p != nil {
				p.remove(id)
				if p.n == 0 {
					delete(ix.values, lv)
				}
			}
		}
	}
	delete(t.indexed, id)
}

// bumpCounts adjusts the subtree entry counts of dn and every ancestor up
// to and including the root.
func (t *DIT) bumpCounts(dn DN, delta int) {
	for d := dn; ; d = d.Parent() {
		t.counts[d.Norm()] += delta
		if len(d) == 0 {
			break
		}
	}
}

// ensureOrdinals lazily assigns every entry its position in the global
// depth-first traversal. A subtree's DFS order is a contiguous slice of
// the global order, so sorting index candidates by ordinal reproduces
// exactly the order the scan returns. Structure changes (Add, Delete)
// invalidate the ordinals; value-only Upserts do not.
//
// The rebuild is double-checked so concurrent read-locked searches (the
// facade's parallel query path) can trigger it safely: the valid flag is
// an atomic — its store after the rebuild publishes the ords slice to
// lock-free fast-path readers — and ordMu serializes the rebuild itself.
// Structural writers run exclusively (the services' write locks), so
// clearing the flag never races a reader holding the slice.
func (t *DIT) ensureOrdinals() []int {
	if t.ordsValid.Load() {
		return t.ords
	}
	t.ordMu.Lock()
	defer t.ordMu.Unlock()
	if t.ordsValid.Load() {
		return t.ords
	}
	if cap(t.ords) < len(t.byID) {
		t.ords = make([]int, len(t.byID))
	}
	t.ords = t.ords[:len(t.byID)]
	n := 0
	var rec func(key string)
	rec = func(key string) {
		if id, ok := t.ids[key]; ok {
			t.ords[id] = n
			n++
		}
		for _, c := range t.children[key] {
			rec(c)
		}
	}
	for _, c := range t.children[""] {
		rec(c)
	}
	t.ordsValid.Store(true)
	return t.ords
}

// filterPlan is the index's answer for one filter: bits holds the
// candidate entry ids. When exact is true the candidates equal the
// filter's match set and no per-entry verification is needed; otherwise
// they are a superset (some conjuncts were not indexable) and each
// candidate is re-checked against the full filter.
type filterPlan struct {
	bits  bitset
	exact bool
}

// planFilter maps a filter to a candidate plan. ok is false when the
// filter (or every usable part of it) is not indexable and the caller
// must scan. plan.bits may alias live postings when owned is false; the
// caller must clone before mutating.
func (t *DIT) planFilter(f Filter) (plan filterPlan, owned, ok bool) {
	switch f := f.(type) {
	case cmpFilter:
		ix := t.idx[strings.ToLower(f.attr)]
		switch f.op {
		case "=", "~=":
			if f.value == "*" {
				if ix == nil {
					return filterPlan{exact: true}, true, true
				}
				return filterPlan{bits: ix.present.bits, exact: true}, false, true
			}
			if strings.Contains(f.value, "*") {
				return filterPlan{}, false, false // substring pattern: scan
			}
			if ix == nil {
				return filterPlan{exact: true}, true, true
			}
			p := ix.values[strings.ToLower(f.value)]
			if p == nil {
				return filterPlan{exact: true}, true, true
			}
			return filterPlan{bits: p.bits, exact: true}, false, true
		case ">=", "<=":
			if ix == nil {
				return filterPlan{exact: true}, true, true
			}
			// Test each distinct value once — O(distinct values) instead
			// of O(entries) — with the same ordered() the scan path uses.
			var bits bitset
			for v, p := range ix.values {
				if ordered(f.op, v, f.value) {
					bits = bits.or(p.bits)
				}
			}
			return filterPlan{bits: bits, exact: true}, true, true
		}
		return filterPlan{}, false, false
	case andFilter:
		// Intersect the indexable conjuncts; non-indexable ones are
		// enforced by the verification pass, so any indexable conjunct
		// yields a sound superset.
		var out filterPlan
		outOwned, planned := false, false
		out.exact = true
		for _, sub := range f.subs {
			p, pOwned, ok := t.planFilter(sub)
			if !ok {
				out.exact = false
				continue
			}
			out.exact = out.exact && p.exact
			if !planned {
				out.bits, outOwned, planned = p.bits, pOwned, true
				continue
			}
			if !outOwned {
				out.bits, outOwned = out.bits.clone(), true
			}
			out.bits = out.bits.and(p.bits)
		}
		if !planned {
			return filterPlan{}, false, false
		}
		return out, outOwned, true
	case orFilter:
		// Every branch must be indexable, or matches could be missed.
		var out filterPlan
		out.exact = true
		for _, sub := range f.subs {
			p, _, ok := t.planFilter(sub)
			if !ok {
				return filterPlan{}, false, false
			}
			out.exact = out.exact && p.exact
			out.bits = out.bits.or(p.bits)
		}
		return out, true, true
	}
	return filterPlan{}, false, false // notFilter, unknown: scan
}

// searchIndexed answers a ScopeSub search from a candidate plan: restrict
// to the base subtree, verify against the full filter when the plan is
// inexact, and order by global DFS position.
func (t *DIT) searchIndexed(base DN, plan filterPlan, filter Filter) ([]*Entry, SearchInfo) {
	info := SearchInfo{IndexHits: plan.bits.count()}
	baseKey := base.Norm()
	info.Visited = t.counts[baseKey]
	ids := make([]int, 0, info.IndexHits)
	plan.bits.forEach(func(id int) {
		if baseKey != "" {
			if k := t.keyByID[id]; k != baseKey && !strings.HasSuffix(k, ","+baseKey) {
				return
			}
		}
		if !plan.exact && !filter.Matches(t.byID[id]) {
			return
		}
		ids = append(ids, id)
	})
	ord := t.ensureOrdinals()
	sortIDsByOrdinal(ids, ord)
	results := make([]*Entry, len(ids))
	for i, id := range ids {
		results[i] = t.byID[id]
	}
	return results, info
}

// sortIDsByOrdinal orders entry ids by DFS position. Ordinals are unique
// (and small), so the comparison can subtract without overflow and needs
// no stability.
func sortIDsByOrdinal(ids []int, ord []int) {
	slices.SortFunc(ids, func(a, b int) int { return ord[a] - ord[b] })
}
