package ldap

import (
	"fmt"
	"sort"
	"strings"
)

// Entry is a directory entry: a DN plus multi-valued attributes. Attribute
// names are case-insensitive; the first spelling is preserved for output.
type Entry struct {
	DN    DN
	attrs map[string]*attrValues
	order []string // lowercase attribute keys in insertion order
}

type attrValues struct {
	name   string
	values []string
}

// NewEntry returns an empty entry at dn.
func NewEntry(dn DN) *Entry {
	return &Entry{DN: dn, attrs: make(map[string]*attrValues)}
}

// Add appends a value to an attribute.
func (e *Entry) Add(attr, value string) {
	key := strings.ToLower(attr)
	av, ok := e.attrs[key]
	if !ok {
		av = &attrValues{name: attr}
		e.attrs[key] = av
		e.order = append(e.order, key)
	}
	av.values = append(av.values, value)
}

// Set replaces an attribute's values.
func (e *Entry) Set(attr string, values ...string) {
	key := strings.ToLower(attr)
	if av, ok := e.attrs[key]; ok {
		av.values = append([]string(nil), values...)
		return
	}
	e.attrs[key] = &attrValues{name: attr, values: append([]string(nil), values...)}
	e.order = append(e.order, key)
}

// Get returns the attribute's values (nil when absent).
func (e *Entry) Get(attr string) []string {
	if av, ok := e.attrs[strings.ToLower(attr)]; ok {
		return av.values
	}
	return nil
}

// First returns the attribute's first value, or "".
func (e *Entry) First(attr string) string {
	vs := e.Get(attr)
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// Has reports whether the attribute is present with at least one value.
func (e *Entry) Has(attr string) bool { return len(e.Get(attr)) > 0 }

// Attributes returns attribute names (original spelling) in insertion
// order.
func (e *Entry) Attributes() []string {
	out := make([]string, 0, len(e.order))
	for _, k := range e.order {
		out = append(out, e.attrs[k].name)
	}
	return out
}

// Project returns a copy of the entry keeping only the named attributes.
// MDS "query part" requests use this to return a slice of each entry.
func (e *Entry) Project(attrs []string) *Entry {
	out := NewEntry(e.DN)
	want := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		want[strings.ToLower(a)] = true
	}
	for _, k := range e.order {
		if want[k] {
			av := e.attrs[k]
			out.Set(av.name, av.values...)
		}
	}
	return out
}

// Clone deep-copies the entry.
func (e *Entry) Clone() *Entry {
	out := NewEntry(e.DN)
	for _, k := range e.order {
		av := e.attrs[k]
		out.Set(av.name, av.values...)
	}
	return out
}

// LDIF renders the entry in LDIF-like form, the unit of the testbed's
// response-size model.
func (e *Entry) LDIF() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "dn: %s\n", e.DN)
	for _, k := range e.order {
		av := e.attrs[k]
		for _, v := range av.values {
			fmt.Fprintf(&sb, "%s: %s\n", av.name, v)
		}
	}
	return sb.String()
}

// SizeBytes estimates the entry's wire size.
func (e *Entry) SizeBytes() int { return len(e.LDIF()) }

// SortedAttributes returns attribute names sorted case-insensitively.
func (e *Entry) SortedAttributes() []string {
	out := e.Attributes()
	sort.Slice(out, func(i, j int) bool {
		return strings.ToLower(out[i]) < strings.ToLower(out[j])
	})
	return out
}
