package ldap

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// scanOracle is an independent reference implementation of the ScopeSub
// search: a plain depth-first walk evaluating the filter on every entry.
// It shares no code with the planner, so the differential tests below
// catch divergence in either direction.
func scanOracle(t *DIT, base DN, filter Filter) (results []*Entry, visited int) {
	var rec func(key string)
	rec = func(key string) {
		if e, ok := t.entries[key]; ok {
			visited++
			if filter == nil || filter.Matches(e) {
				results = append(results, e)
			}
		}
		for _, c := range t.children[key] {
			rec(c)
		}
	}
	if base.Depth() == 0 {
		for _, c := range t.children[""] {
			rec(c)
		}
		return results, visited
	}
	if _, ok := t.entries[base.Norm()]; !ok {
		return nil, 0
	}
	rec(base.Norm())
	return results, visited
}

// randomDIT builds a tree of nHosts host entries under two suffixes, each
// with randomized attributes drawn from a small pool so filters hit real
// value collisions (multi-valued attributes included).
func randomDIT(rng *rand.Rand, nHosts int) *DIT {
	t := NewDIT()
	classes := []string{"MdsHost", "MdsCpu", "MdsFs", "MdsNet"}
	oses := []string{"Linux", "Solaris", "AIX"}
	for i := 0; i < nHosts; i++ {
		vo := "local"
		if rng.Intn(3) == 0 {
			vo = "remote"
		}
		dn := MustParseDN(fmt.Sprintf("Mds-Host-hn=h%03d, Mds-Vo-name=%s, o=grid", i, vo))
		e := NewEntry(dn)
		e.Set("objectclass", classes[rng.Intn(len(classes))])
		e.Set("Mds-Cpu-Free-1minX100", fmt.Sprintf("%d", rng.Intn(100)))
		if rng.Intn(2) == 0 {
			e.Set("Mds-Os-name", oses[rng.Intn(len(oses))])
		}
		if rng.Intn(4) == 0 {
			// Multi-valued attribute: postings must dedupe entries.
			e.Set("Mds-Service", "ldap", "gris")
		}
		if rng.Intn(5) == 0 {
			e.Set("Mds-Memory-Ram-Total-freeMB", fmt.Sprintf("%d", 64+rng.Intn(1000)))
		}
		if err := t.Add(e); err != nil {
			panic(err)
		}
	}
	return t
}

// filterCorpus mixes indexable shapes (equality, presence, ranges,
// AND/OR) with scan-only shapes (substrings, NOT, mixed trees).
var filterCorpus = []string{
	"(objectclass=MdsHost)",
	"(objectclass=mdshost)", // case-insensitive equality
	"(objectclass=*)",
	"(nosuchattr=*)",
	"(nosuchattr=value)",
	"(Mds-Cpu-Free-1minX100>=50)",
	"(Mds-Cpu-Free-1minX100<=10)",
	"(Mds-Os-name>=Linux)", // string-ordered range
	"(&(objectclass=MdsHost)(Mds-Cpu-Free-1minX100>=50))",
	"(&(objectclass=MdsHost)(Mds-Cpu-Free-1minX100>=50)(Mds-Os-name=Linux))",
	"(|(objectclass=MdsHost)(objectclass=MdsCpu))",
	"(|(Mds-Cpu-Free-1minX100<=5)(Mds-Cpu-Free-1minX100>=95))",
	"(&(|(objectclass=MdsHost)(objectclass=MdsFs))(Mds-Service=ldap))",
	"(Mds-Host-hn=h0*)",                              // substring: scan path
	"(!(objectclass=MdsHost))",                       // NOT: scan path
	"(&(objectclass=MdsHost)(Mds-Host-hn=*1*))",      // indexable + substring conjunct
	"(&(Mds-Host-hn=*1*)(Mds-Cpu-Free-1minX100>=0))", // substring first
	"(|(objectclass=MdsHost)(Mds-Host-hn=h0*))",      // OR with scan branch: scan
	"(&(objectclass=MdsStructure)(objectclass=*))",
}

func dnList(entries []*Entry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.DN.Norm()
	}
	return out
}

func assertSameSearch(t *testing.T, dit *DIT, base DN, src string) {
	t.Helper()
	filter := MustParseFilter(src)
	got, info := dit.SearchStats(base, ScopeSub, filter)
	want, visited := scanOracle(dit, base, filter)
	gotDNs, wantDNs := dnList(got), dnList(want)
	if strings.Join(gotDNs, "\n") != strings.Join(wantDNs, "\n") {
		t.Fatalf("filter %s base %q:\nindexed: %v\noracle:  %v", src, base, gotDNs, wantDNs)
	}
	if info.Visited != visited {
		t.Fatalf("filter %s base %q: Visited = %d, oracle visited %d", src, base, info.Visited, visited)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("filter %s: result %d is a different *Entry than the oracle's", src, i)
		}
	}
}

// TestSearchDifferential holds the indexed path to byte-identical results
// (same entries, same order, same visited accounting) with the scan
// oracle over randomized trees and the whole filter corpus, from both the
// root and a suffix base.
func TestSearchDifferential(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dit := randomDIT(rng, 120)
		bases := []DN{nil, MustParseDN("Mds-Vo-name=local, o=grid"), MustParseDN("o=grid"),
			MustParseDN("Mds-Vo-name=nosuch, o=grid")}
		for _, base := range bases {
			for _, src := range filterCorpus {
				assertSameSearch(t, dit, base, src)
			}
		}
	}
}

// TestSearchDifferentialAfterChurn exercises the index maintenance:
// upserts that change attribute values, deletes of whole subtrees, and
// re-adds must leave the postings exactly consistent with the tree.
func TestSearchDifferentialAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dit := randomDIT(rng, 100)
	for round := 0; round < 30; round++ {
		switch rng.Intn(3) {
		case 0: // upsert with fresh attribute values
			i := rng.Intn(100)
			dn := MustParseDN(fmt.Sprintf("Mds-Host-hn=h%03d, Mds-Vo-name=local, o=grid", i))
			e := NewEntry(dn)
			e.Set("objectclass", "MdsHost")
			e.Set("Mds-Cpu-Free-1minX100", fmt.Sprintf("%d", rng.Intn(100)))
			dit.Upsert(e)
		case 1: // delete a host subtree (may be absent: Delete returns 0)
			i := rng.Intn(100)
			vo := "local"
			if rng.Intn(2) == 0 {
				vo = "remote"
			}
			dit.Delete(MustParseDN(fmt.Sprintf("Mds-Host-hn=h%03d, Mds-Vo-name=%s, o=grid", i, vo)))
		case 2: // add a brand-new entry
			dn := MustParseDN(fmt.Sprintf("Mds-Host-hn=x%03d, Mds-Vo-name=local, o=grid", round))
			e := NewEntry(dn)
			e.Set("objectclass", "MdsHost")
			e.Set("Mds-Cpu-Free-1minX100", fmt.Sprintf("%d", rng.Intn(100)))
			dit.Upsert(e)
		}
		for _, src := range filterCorpus {
			assertSameSearch(t, dit, nil, src)
		}
	}
}

// TestSearchIndexStats pins the fast-path accounting: an indexable filter
// reports IndexHits with Scanned false, a substring filter the reverse,
// and both report the identical logical Visited count.
func TestSearchIndexStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dit := randomDIT(rng, 50)
	_, indexed := dit.SearchStats(nil, ScopeSub, MustParseFilter("(objectclass=MdsHost)"))
	if indexed.Scanned {
		t.Fatal("equality filter took the scan path")
	}
	if indexed.IndexHits == 0 {
		t.Fatal("equality filter reported no index hits")
	}
	_, scanned := dit.SearchStats(nil, ScopeSub, MustParseFilter("(Mds-Host-hn=h0*)"))
	if !scanned.Scanned || scanned.IndexHits != 0 {
		t.Fatalf("substring filter should scan: %+v", scanned)
	}
	if indexed.Visited != scanned.Visited {
		t.Fatalf("logical visited differs across paths: %d vs %d", indexed.Visited, scanned.Visited)
	}
	if indexed.Visited != dit.Len() {
		t.Fatalf("whole-tree Visited = %d, want %d entries", indexed.Visited, dit.Len())
	}
}
