// Package ldap implements the directory engine underneath MDS: a
// hierarchical Directory Information Tree of attribute-valued entries,
// RFC 1960-style search filters, and base/one-level/subtree search. MDS 2.1
// was built on OpenLDAP; this package supplies the same data model and
// query semantics without the wire protocol.
package ldap

import (
	"fmt"
	"strings"
)

// RDN is a single relative distinguished name component, attr=value.
type RDN struct {
	Attr  string
	Value string
}

// String renders the RDN as attr=value.
func (r RDN) String() string { return r.Attr + "=" + r.Value }

// norm returns the case-normalized comparison form.
func (r RDN) norm() string {
	return strings.ToLower(r.Attr) + "=" + strings.ToLower(strings.TrimSpace(r.Value))
}

// DN is a distinguished name: RDNs ordered leaf-first, as in
// "Mds-Host-hn=lucky7, Mds-Vo-name=local, o=grid".
type DN []RDN

// ParseDN parses a comma-separated DN. The empty string is the root DN.
func ParseDN(s string) (DN, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	dn := make(DN, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		eq := strings.IndexByte(part, '=')
		if eq <= 0 || eq == len(part)-1 {
			return nil, fmt.Errorf("ldap: bad RDN %q in DN %q", part, s)
		}
		dn = append(dn, RDN{
			Attr:  strings.TrimSpace(part[:eq]),
			Value: strings.TrimSpace(part[eq+1:]),
		})
	}
	return dn, nil
}

// MustParseDN is ParseDN that panics on error, for statically known DNs.
func MustParseDN(s string) DN {
	dn, err := ParseDN(s)
	if err != nil {
		panic(err)
	}
	return dn
}

// String renders the DN in the usual leaf-first comma form.
func (d DN) String() string {
	parts := make([]string, len(d))
	for i, r := range d {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}

// Norm returns the case-normalized comparison key for the DN.
func (d DN) Norm() string {
	parts := make([]string, len(d))
	for i, r := range d {
		parts[i] = r.norm()
	}
	return strings.Join(parts, ",")
}

// Parent returns the DN with the leaf RDN removed; the parent of a
// single-RDN DN (or the root) is the root DN.
func (d DN) Parent() DN {
	if len(d) == 0 {
		return nil
	}
	return d[1:]
}

// Child returns the DN extended with a new leaf RDN.
func (d DN) Child(attr, value string) DN {
	child := make(DN, 0, len(d)+1)
	child = append(child, RDN{Attr: attr, Value: value})
	child = append(child, d...)
	return child
}

// Depth reports the number of RDNs.
func (d DN) Depth() int { return len(d) }

// Equal reports case-insensitive equality of two DNs.
func (d DN) Equal(o DN) bool { return d.Norm() == o.Norm() }

// IsDescendantOf reports whether d lies strictly under ancestor.
func (d DN) IsDescendantOf(ancestor DN) bool {
	if len(d) <= len(ancestor) {
		return false
	}
	return DN(d[len(d)-len(ancestor):]).Norm() == ancestor.Norm()
}
