package ldap

import (
	"fmt"
	"strconv"
	"strings"
)

// Filter is a parsed RFC 1960 search filter.
type Filter interface {
	// Matches reports whether the entry satisfies the filter.
	Matches(e *Entry) bool
	// String renders the filter in parenthesized RFC 1960 form.
	String() string
}

type andFilter struct{ subs []Filter }
type orFilter struct{ subs []Filter }
type notFilter struct{ sub Filter }

// cmpFilter covers equality, substring, presence, >= and <= assertions.
type cmpFilter struct {
	attr string
	op   string // "=", ">=", "<=", "~="
	// For op "=": pattern parts; a nil parts with value "*" is presence,
	// substring patterns are split on '*'.
	value string
}

func (f andFilter) String() string { return "(&" + joinFilters(f.subs) + ")" }
func (f orFilter) String() string  { return "(|" + joinFilters(f.subs) + ")" }
func (f notFilter) String() string { return "(!" + f.sub.String() + ")" }
func (f cmpFilter) String() string { return "(" + f.attr + f.op + f.value + ")" }

func joinFilters(subs []Filter) string {
	var sb strings.Builder
	for _, s := range subs {
		sb.WriteString(s.String())
	}
	return sb.String()
}

func (f andFilter) Matches(e *Entry) bool {
	for _, s := range f.subs {
		if !s.Matches(e) {
			return false
		}
	}
	return true
}

func (f orFilter) Matches(e *Entry) bool {
	for _, s := range f.subs {
		if s.Matches(e) {
			return true
		}
	}
	return false
}

func (f notFilter) Matches(e *Entry) bool { return !f.sub.Matches(e) }

func (f cmpFilter) Matches(e *Entry) bool {
	values := e.Get(f.attr)
	switch f.op {
	case "=", "~=":
		if f.value == "*" {
			return len(values) > 0
		}
		for _, v := range values {
			if matchPattern(f.value, v) {
				return true
			}
		}
		return false
	case ">=", "<=":
		for _, v := range values {
			if ordered(f.op, v, f.value) {
				return true
			}
		}
		return false
	}
	return false
}

// matchPattern implements case-insensitive equality with '*' wildcards.
func matchPattern(pattern, value string) bool {
	p := strings.ToLower(pattern)
	v := strings.ToLower(value)
	if !strings.Contains(p, "*") {
		return p == v
	}
	parts := strings.Split(p, "*")
	// Leading anchor.
	if parts[0] != "" {
		if !strings.HasPrefix(v, parts[0]) {
			return false
		}
		v = v[len(parts[0]):]
	}
	// Trailing anchor.
	last := parts[len(parts)-1]
	if last != "" {
		if !strings.HasSuffix(v, last) {
			return false
		}
		v = v[:len(v)-len(last)]
	}
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		i := strings.Index(v, mid)
		if i < 0 {
			return false
		}
		v = v[i+len(mid):]
	}
	return true
}

// ordered compares numerically when both operands parse as numbers,
// falling back to case-insensitive string order — matching how MDS data
// (load averages, free memory) is compared in practice.
func ordered(op, a, b string) bool {
	fa, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
	fb, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
	var cmp int
	if errA == nil && errB == nil {
		switch {
		case fa < fb:
			cmp = -1
		case fa > fb:
			cmp = 1
		}
	} else {
		cmp = strings.Compare(strings.ToLower(a), strings.ToLower(b))
	}
	if op == ">=" {
		return cmp >= 0
	}
	return cmp <= 0
}

// ParseFilter parses an RFC 1960 filter string such as
// "(&(objectclass=MdsHost)(Mds-Cpu-Free-1minX100>=50))".
func ParseFilter(s string) (Filter, error) {
	p := &filterParser{src: s}
	f, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("ldap: trailing input in filter %q at %d", s, p.pos)
	}
	return f, nil
}

// MustParseFilter is ParseFilter that panics on error.
func MustParseFilter(s string) Filter {
	f, err := ParseFilter(s)
	if err != nil {
		panic(err)
	}
	return f
}

type filterParser struct {
	src string
	pos int
}

func (p *filterParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("ldap: filter %q at %d: %s", p.src, p.pos, fmt.Sprintf(format, args...))
}

func (p *filterParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *filterParser) parse() (Filter, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return nil, p.errf("expected '('")
	}
	p.pos++
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, p.errf("unterminated filter")
	}
	switch p.src[p.pos] {
	case '&':
		p.pos++
		subs, err := p.parseSet()
		if err != nil {
			return nil, err
		}
		return andFilter{subs: subs}, nil
	case '|':
		p.pos++
		subs, err := p.parseSet()
		if err != nil {
			return nil, err
		}
		return orFilter{subs: subs}, nil
	case '!':
		p.pos++
		sub, err := p.parse()
		if err != nil {
			return nil, err
		}
		if err := p.expectClose(); err != nil {
			return nil, err
		}
		return notFilter{sub: sub}, nil
	}
	return p.parseComparison()
}

func (p *filterParser) parseSet() ([]Filter, error) {
	var subs []Filter
	for {
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '(' {
			sub, err := p.parse()
			if err != nil {
				return nil, err
			}
			subs = append(subs, sub)
			continue
		}
		break
	}
	if len(subs) == 0 {
		return nil, p.errf("empty filter set")
	}
	if err := p.expectClose(); err != nil {
		return nil, err
	}
	return subs, nil
}

func (p *filterParser) expectClose() error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != ')' {
		return p.errf("expected ')'")
	}
	p.pos++
	return nil
}

func (p *filterParser) parseComparison() (Filter, error) {
	start := p.pos
	for p.pos < len(p.src) && !strings.ContainsRune("=<>~()", rune(p.src[p.pos])) {
		p.pos++
	}
	attr := strings.TrimSpace(p.src[start:p.pos])
	if attr == "" {
		return nil, p.errf("missing attribute name")
	}
	if p.pos >= len(p.src) {
		return nil, p.errf("missing comparison operator")
	}
	var op string
	switch p.src[p.pos] {
	case '=':
		op = "="
		p.pos++
	case '>', '<', '~':
		c := p.src[p.pos]
		p.pos++
		if p.pos >= len(p.src) || p.src[p.pos] != '=' {
			return nil, p.errf("expected '=' after %q", c)
		}
		p.pos++
		op = string(c) + "="
	default:
		return nil, p.errf("bad comparison operator %q", p.src[p.pos])
	}
	vstart := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ')' {
		p.pos++
	}
	value := strings.TrimSpace(p.src[vstart:p.pos])
	if value == "" {
		return nil, p.errf("missing comparison value")
	}
	if err := p.expectClose(); err != nil {
		return nil, err
	}
	return cmpFilter{attr: attr, op: op, value: value}, nil
}

// PresentAll is the match-everything filter "(objectclass=*)".
var PresentAll = MustParseFilter("(objectclass=*)")
