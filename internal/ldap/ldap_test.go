package ldap

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseDN(t *testing.T) {
	dn := MustParseDN("Mds-Host-hn=lucky7, Mds-Vo-name=local, o=grid")
	if dn.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", dn.Depth())
	}
	if dn[0].Attr != "Mds-Host-hn" || dn[0].Value != "lucky7" {
		t.Fatalf("leaf RDN = %v", dn[0])
	}
	if got := dn.String(); got != "Mds-Host-hn=lucky7, Mds-Vo-name=local, o=grid" {
		t.Fatalf("String = %q", got)
	}
}

func TestParseDNErrors(t *testing.T) {
	for _, s := range []string{"noequals", "=value", "attr=", "a=b,,c=d"} {
		if _, err := ParseDN(s); err == nil {
			t.Errorf("ParseDN(%q) succeeded, want error", s)
		}
	}
}

func TestParseDNEmptyIsRoot(t *testing.T) {
	dn, err := ParseDN("")
	if err != nil || dn.Depth() != 0 {
		t.Fatalf("empty DN: %v, %v", dn, err)
	}
}

func TestDNEqualityCaseInsensitive(t *testing.T) {
	a := MustParseDN("O=Grid")
	b := MustParseDN("o=grid")
	if !a.Equal(b) {
		t.Fatal("case-insensitive DNs not equal")
	}
}

func TestDNParentChild(t *testing.T) {
	base := MustParseDN("o=grid")
	child := base.Child("Mds-Vo-name", "local")
	if child.String() != "Mds-Vo-name=local, o=grid" {
		t.Fatalf("child = %q", child)
	}
	if !child.Parent().Equal(base) {
		t.Fatal("parent mismatch")
	}
	if !child.IsDescendantOf(base) {
		t.Fatal("descendant check failed")
	}
	if base.IsDescendantOf(child) {
		t.Fatal("ancestor claimed to be descendant")
	}
	if base.IsDescendantOf(base) {
		t.Fatal("DN claimed to descend from itself")
	}
}

func TestEntryAttributes(t *testing.T) {
	e := NewEntry(MustParseDN("o=grid"))
	e.Add("objectclass", "MdsHost")
	e.Add("objectclass", "MdsComputer")
	e.Set("Mds-Host-hn", "lucky7")
	if got := e.Get("OBJECTCLASS"); len(got) != 2 {
		t.Fatalf("multi-valued get = %v", got)
	}
	if e.First("mds-host-hn") != "lucky7" {
		t.Fatalf("First = %q", e.First("mds-host-hn"))
	}
	if !e.Has("objectclass") || e.Has("missing") {
		t.Fatal("Has misbehaved")
	}
}

func TestEntryProject(t *testing.T) {
	e := NewEntry(MustParseDN("o=grid"))
	e.Set("a", "1")
	e.Set("b", "2")
	e.Set("c", "3")
	p := e.Project([]string{"A", "c"})
	if p.Has("b") || !p.Has("a") || !p.Has("c") {
		t.Fatalf("projection kept %v", p.Attributes())
	}
	if p.SizeBytes() >= e.SizeBytes() {
		t.Fatal("projection did not shrink entry")
	}
}

func TestLDIFFormat(t *testing.T) {
	e := NewEntry(MustParseDN("Mds-Host-hn=lucky7, o=grid"))
	e.Set("Mds-Cpu-Total-count", "2")
	ldif := e.LDIF()
	if !strings.HasPrefix(ldif, "dn: Mds-Host-hn=lucky7, o=grid\n") {
		t.Fatalf("LDIF = %q", ldif)
	}
	if !strings.Contains(ldif, "Mds-Cpu-Total-count: 2\n") {
		t.Fatalf("LDIF = %q", ldif)
	}
}

func makeHostEntry(host string, freePct int) *Entry {
	e := NewEntry(MustParseDN("Mds-Host-hn=" + host + ", Mds-Vo-name=local, o=grid"))
	e.Set("objectclass", "MdsHost")
	e.Set("Mds-Host-hn", host)
	e.Set("Mds-Cpu-Free-1minX100", fmt.Sprintf("%d", freePct))
	return e
}

func TestFilterEquality(t *testing.T) {
	f := MustParseFilter("(Mds-Host-hn=lucky7)")
	if !f.Matches(makeHostEntry("lucky7", 50)) {
		t.Fatal("equality filter missed")
	}
	if f.Matches(makeHostEntry("lucky3", 50)) {
		t.Fatal("equality filter over-matched")
	}
}

func TestFilterCaseInsensitiveValue(t *testing.T) {
	f := MustParseFilter("(Mds-Host-hn=LUCKY7)")
	if !f.Matches(makeHostEntry("lucky7", 50)) {
		t.Fatal("value comparison should be case-insensitive")
	}
}

func TestFilterPresence(t *testing.T) {
	f := MustParseFilter("(objectclass=*)")
	if !f.Matches(makeHostEntry("lucky7", 50)) {
		t.Fatal("presence filter missed")
	}
	g := MustParseFilter("(nosuchattr=*)")
	if g.Matches(makeHostEntry("lucky7", 50)) {
		t.Fatal("presence filter over-matched")
	}
}

func TestFilterSubstring(t *testing.T) {
	cases := []struct {
		pattern string
		match   bool
	}{
		{"(Mds-Host-hn=lucky*)", true},
		{"(Mds-Host-hn=*7)", true},
		{"(Mds-Host-hn=l*y*)", true},
		{"(Mds-Host-hn=*uck*)", true},
		{"(Mds-Host-hn=uc*)", false},
		{"(Mds-Host-hn=*8)", false},
	}
	e := makeHostEntry("lucky7", 50)
	for _, c := range cases {
		f := MustParseFilter(c.pattern)
		if f.Matches(e) != c.match {
			t.Errorf("%s matches=%v, want %v", c.pattern, !c.match, c.match)
		}
	}
}

func TestFilterNumericOrder(t *testing.T) {
	e := makeHostEntry("lucky7", 75)
	if !MustParseFilter("(Mds-Cpu-Free-1minX100>=50)").Matches(e) {
		t.Fatal(">= filter missed")
	}
	if MustParseFilter("(Mds-Cpu-Free-1minX100>=80)").Matches(e) {
		t.Fatal(">= filter over-matched")
	}
	if !MustParseFilter("(Mds-Cpu-Free-1minX100<=75)").Matches(e) {
		t.Fatal("<= filter missed")
	}
	// Numeric, not lexicographic: "9" <= "75" must be false numerically.
	e2 := makeHostEntry("lucky3", 9)
	if MustParseFilter("(Mds-Cpu-Free-1minX100>=75)").Matches(e2) {
		t.Fatal("lexicographic comparison leaked through")
	}
}

func TestFilterBooleanCombinators(t *testing.T) {
	e := makeHostEntry("lucky7", 75)
	if !MustParseFilter("(&(objectclass=MdsHost)(Mds-Cpu-Free-1minX100>=50))").Matches(e) {
		t.Fatal("and filter missed")
	}
	if MustParseFilter("(&(objectclass=MdsHost)(Mds-Cpu-Free-1minX100>=80))").Matches(e) {
		t.Fatal("and filter over-matched")
	}
	if !MustParseFilter("(|(Mds-Host-hn=lucky3)(Mds-Host-hn=lucky7))").Matches(e) {
		t.Fatal("or filter missed")
	}
	if !MustParseFilter("(!(Mds-Host-hn=lucky3))").Matches(e) {
		t.Fatal("not filter missed")
	}
}

func TestFilterParseErrors(t *testing.T) {
	for _, s := range []string{
		"", "(", "()", "(a)", "(=b)", "(a=)", "(a=b", "(&)", "(a=b)(c=d)",
		"(a>b)", "(!)",
	} {
		if _, err := ParseFilter(s); err == nil {
			t.Errorf("ParseFilter(%q) succeeded, want error", s)
		}
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	srcs := []string{
		"(a=b)",
		"(&(a=b)(c>=5))",
		"(|(a=b)(!(c=*)))",
		"(a=lucky*)",
	}
	for _, s := range srcs {
		f := MustParseFilter(s)
		again := MustParseFilter(f.String())
		if f.String() != again.String() {
			t.Errorf("round trip: %q -> %q -> %q", s, f.String(), again.String())
		}
	}
}

func buildTestDIT(t *testing.T) *DIT {
	t.Helper()
	dit := NewDIT()
	root := NewEntry(MustParseDN("o=grid"))
	root.Set("objectclass", "GlobusTop")
	if err := dit.Add(root); err != nil {
		t.Fatal(err)
	}
	vo := NewEntry(MustParseDN("Mds-Vo-name=local, o=grid"))
	vo.Set("objectclass", "MdsVo")
	if err := dit.Add(vo); err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"lucky3", "lucky4", "lucky7"} {
		if err := dit.Add(makeHostEntry(h, 50)); err != nil {
			t.Fatal(err)
		}
	}
	return dit
}

func TestDITAddAndGet(t *testing.T) {
	dit := buildTestDIT(t)
	if dit.Len() != 5 {
		t.Fatalf("Len = %d, want 5", dit.Len())
	}
	e, ok := dit.Get(MustParseDN("mds-host-hn=LUCKY7, mds-vo-name=local, o=grid"))
	if !ok || e.First("Mds-Host-hn") != "lucky7" {
		t.Fatal("case-insensitive Get failed")
	}
}

func TestDITAddDuplicateFails(t *testing.T) {
	dit := buildTestDIT(t)
	if err := dit.Add(makeHostEntry("lucky7", 10)); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
}

func TestDITAddCreatesGlueAncestors(t *testing.T) {
	dit := NewDIT()
	deep := NewEntry(MustParseDN("a=1, b=2, c=3"))
	deep.Set("objectclass", "X")
	if err := dit.Add(deep); err != nil {
		t.Fatal(err)
	}
	if dit.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (entry + 2 glue)", dit.Len())
	}
	if _, ok := dit.Get(MustParseDN("c=3")); !ok {
		t.Fatal("glue suffix missing")
	}
}

func TestDITUpsertReplaces(t *testing.T) {
	dit := buildTestDIT(t)
	dit.Upsert(makeHostEntry("lucky7", 99))
	e, _ := dit.Get(MustParseDN("Mds-Host-hn=lucky7, Mds-Vo-name=local, o=grid"))
	if e.First("Mds-Cpu-Free-1minX100") != "99" {
		t.Fatalf("upsert did not replace: %v", e.First("Mds-Cpu-Free-1minX100"))
	}
	if dit.Len() != 5 {
		t.Fatalf("Len changed to %d", dit.Len())
	}
}

func TestDITDeleteSubtree(t *testing.T) {
	dit := buildTestDIT(t)
	n := dit.Delete(MustParseDN("Mds-Vo-name=local, o=grid"))
	if n != 4 {
		t.Fatalf("deleted %d, want 4 (vo + 3 hosts)", n)
	}
	if dit.Len() != 1 {
		t.Fatalf("Len = %d, want 1", dit.Len())
	}
	if dit.Delete(MustParseDN("Mds-Vo-name=local, o=grid")) != 0 {
		t.Fatal("second delete removed something")
	}
}

func TestSearchScopes(t *testing.T) {
	dit := buildTestDIT(t)
	vo := MustParseDN("Mds-Vo-name=local, o=grid")

	base, _ := dit.Search(vo, ScopeBase, nil)
	if len(base) != 1 {
		t.Fatalf("base search = %d entries, want 1", len(base))
	}
	one, _ := dit.Search(vo, ScopeOne, nil)
	if len(one) != 3 {
		t.Fatalf("one search = %d entries, want 3", len(one))
	}
	sub, _ := dit.Search(vo, ScopeSub, nil)
	if len(sub) != 4 {
		t.Fatalf("sub search = %d entries, want 4", len(sub))
	}
	all, _ := dit.Search(nil, ScopeSub, nil)
	if len(all) != 5 {
		t.Fatalf("root sub search = %d entries, want 5", len(all))
	}
}

func TestSearchWithFilter(t *testing.T) {
	dit := buildTestDIT(t)
	f := MustParseFilter("(Mds-Host-hn=lucky4)")
	got, visited := dit.Search(nil, ScopeSub, f)
	if len(got) != 1 || got[0].First("Mds-Host-hn") != "lucky4" {
		t.Fatalf("filtered search = %v", got)
	}
	if visited != 5 {
		t.Fatalf("visited = %d, want 5 (full subtree walk)", visited)
	}
}

func TestSearchMissingBase(t *testing.T) {
	dit := buildTestDIT(t)
	got, _ := dit.Search(MustParseDN("o=nowhere"), ScopeSub, nil)
	if got != nil {
		t.Fatalf("search under missing base = %v", got)
	}
}

func TestSearchDeterministicOrder(t *testing.T) {
	dit := buildTestDIT(t)
	first, _ := dit.Search(nil, ScopeSub, nil)
	for i := 0; i < 5; i++ {
		again, _ := dit.Search(nil, ScopeSub, nil)
		for j := range first {
			if first[j].DN.Norm() != again[j].DN.Norm() {
				t.Fatal("search order varies between calls")
			}
		}
	}
}

func TestProjectAllAndSize(t *testing.T) {
	dit := buildTestDIT(t)
	all, _ := dit.Search(nil, ScopeSub, MustParseFilter("(objectclass=MdsHost)"))
	full := SizeBytes(all)
	part := SizeBytes(ProjectAll(all, []string{"Mds-Host-hn"}))
	if part >= full {
		t.Fatalf("projected size %d not smaller than full %d", part, full)
	}
	if same := ProjectAll(all, nil); len(same) != len(all) {
		t.Fatal("nil projection changed result count")
	}
}

func TestFormatResults(t *testing.T) {
	dit := buildTestDIT(t)
	all, _ := dit.Search(nil, ScopeSub, MustParseFilter("(objectclass=MdsHost)"))
	out := FormatResults(all)
	if strings.Count(out, "dn: ") != 3 {
		t.Fatalf("FormatResults = %q", out)
	}
}

// Property: De Morgan for filters — (!(&(a)(b))) matches exactly when
// (|(!(a))(!(b))) matches.
func TestFilterDeMorganProperty(t *testing.T) {
	f := func(x, y uint8) bool {
		e := NewEntry(MustParseDN("o=grid"))
		e.Set("x", fmt.Sprintf("%d", x%4))
		e.Set("y", fmt.Sprintf("%d", y%4))
		lhs := MustParseFilter("(!(&(x=1)(y=1)))")
		rhs := MustParseFilter("(|(!(x=1))(!(y=1)))")
		return lhs.Matches(e) == rhs.Matches(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: double negation is identity.
func TestFilterDoubleNegationProperty(t *testing.T) {
	f := func(v uint8) bool {
		e := NewEntry(MustParseDN("o=grid"))
		e.Set("x", fmt.Sprintf("%d", v%8))
		inner := MustParseFilter("(x=3)")
		doubled := MustParseFilter("(!(!(x=3)))")
		return inner.Matches(e) == doubled.Matches(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: >= and <= together imply equality on numeric attributes.
func TestFilterOrderConsistencyProperty(t *testing.T) {
	f := func(a, b int16) bool {
		e := NewEntry(MustParseDN("o=grid"))
		e.Set("v", fmt.Sprintf("%d", a))
		ge := MustParseFilter(fmt.Sprintf("(v>=%d)", b))
		le := MustParseFilter(fmt.Sprintf("(v<=%d)", b))
		both := ge.Matches(e) && le.Matches(e)
		return both == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
