package ldap

import (
	"fmt"
	"sort"
	"strings"
)

// Scope selects how much of the tree a search covers, mirroring LDAP.
type Scope int

const (
	// ScopeBase searches only the base entry.
	ScopeBase Scope = iota
	// ScopeOne searches the base entry's immediate children.
	ScopeOne
	// ScopeSub searches the base entry and its whole subtree.
	ScopeSub
)

func (s Scope) String() string {
	switch s {
	case ScopeBase:
		return "base"
	case ScopeOne:
		return "one"
	case ScopeSub:
		return "sub"
	}
	return "invalid"
}

// DIT is a Directory Information Tree — the in-memory backend a GRIS or
// GIIS serves from. It is not safe for concurrent mutation; the services
// built on it serialize access the way a single slapd backend does.
type DIT struct {
	entries  map[string]*Entry   // normalized DN -> entry
	children map[string][]string // normalized parent DN -> child keys, insertion order
}

// NewDIT returns an empty tree containing only the implicit root.
func NewDIT() *DIT {
	return &DIT{
		entries:  make(map[string]*Entry),
		children: make(map[string][]string),
	}
}

// Len reports the number of entries.
func (t *DIT) Len() int { return len(t.entries) }

// Add inserts an entry. The parent must already exist unless the entry is
// a suffix (depth-1) entry or its parent chain is missing entirely — MDS
// creates suffix entries like "Mds-Vo-name=local, o=grid" directly, so any
// missing ancestors are created as empty structural entries.
func (t *DIT) Add(e *Entry) error {
	key := e.DN.Norm()
	if key == "" {
		return fmt.Errorf("ldap: cannot add entry with empty DN")
	}
	if _, exists := t.entries[key]; exists {
		return fmt.Errorf("ldap: entry %q already exists", e.DN)
	}
	// Materialize missing ancestors as structural glue entries.
	for depth := 1; depth < e.DN.Depth(); depth++ {
		anc := DN(e.DN[e.DN.Depth()-depth:])
		if _, ok := t.entries[anc.Norm()]; !ok {
			glue := NewEntry(anc)
			glue.Set("objectclass", "MdsStructure")
			t.link(glue)
		}
	}
	t.link(e)
	return nil
}

func (t *DIT) link(e *Entry) {
	key := e.DN.Norm()
	t.entries[key] = e
	parent := e.DN.Parent().Norm()
	t.children[parent] = append(t.children[parent], key)
}

// Upsert inserts or replaces the entry at its DN.
func (t *DIT) Upsert(e *Entry) {
	key := e.DN.Norm()
	if old, ok := t.entries[key]; ok {
		// Keep tree links, replace content.
		*old = *e.Clone()
		old.DN = e.DN
		return
	}
	if err := t.Add(e); err != nil {
		// Add only fails for duplicates (checked) or empty DN.
		panic(err)
	}
}

// Get returns the entry at dn.
func (t *DIT) Get(dn DN) (*Entry, bool) {
	e, ok := t.entries[dn.Norm()]
	return e, ok
}

// Delete removes the entry at dn and its entire subtree, returning the
// number of entries removed.
func (t *DIT) Delete(dn DN) int {
	key := dn.Norm()
	if _, ok := t.entries[key]; !ok {
		return 0
	}
	removed := 0
	var rec func(k string)
	rec = func(k string) {
		for _, c := range t.children[k] {
			rec(c)
		}
		delete(t.children, k)
		if _, ok := t.entries[k]; ok {
			delete(t.entries, k)
			removed++
		}
	}
	rec(key)
	// Unlink from parent.
	parent := dn.Parent().Norm()
	kids := t.children[parent]
	for i, c := range kids {
		if c == key {
			t.children[parent] = append(kids[:i], kids[i+1:]...)
			break
		}
	}
	return removed
}

// Children returns the immediate child entries of dn in insertion order.
func (t *DIT) Children(dn DN) []*Entry {
	keys := t.children[dn.Norm()]
	out := make([]*Entry, 0, len(keys))
	for _, k := range keys {
		if e, ok := t.entries[k]; ok {
			out = append(out, e)
		}
	}
	return out
}

// Search walks the tree from base with the given scope and returns entries
// matching filter, in deterministic (depth-first insertion) order. A nil
// filter matches everything. The returned visited count is the number of
// entries examined — the quantity the testbed charges CPU for.
func (t *DIT) Search(base DN, scope Scope, filter Filter) (results []*Entry, visited int) {
	baseEntry, ok := t.Get(base)
	if !ok && base.Depth() > 0 {
		return nil, 0
	}
	match := func(e *Entry) {
		visited++
		if filter == nil || filter.Matches(e) {
			results = append(results, e)
		}
	}
	switch scope {
	case ScopeBase:
		if baseEntry != nil {
			match(baseEntry)
		}
	case ScopeOne:
		for _, c := range t.Children(base) {
			match(c)
		}
	case ScopeSub:
		var rec func(dnKey string)
		rec = func(dnKey string) {
			if e, ok := t.entries[dnKey]; ok {
				match(e)
			}
			for _, c := range t.children[dnKey] {
				rec(c)
			}
		}
		if base.Depth() == 0 {
			// Whole tree: every suffix under the root.
			for _, c := range t.children[""] {
				rec(c)
			}
		} else {
			rec(base.Norm())
		}
	}
	return results, visited
}

// DNs returns every entry DN in sorted normalized order, for stable test
// assertions.
func (t *DIT) DNs() []string {
	out := make([]string, 0, len(t.entries))
	for k := range t.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SizeBytes estimates the LDIF size of a result set.
func SizeBytes(entries []*Entry) int {
	n := 0
	for _, e := range entries {
		n += e.SizeBytes() + 1
	}
	return n
}

// ProjectAll applies Entry.Project to each entry when attrs is non-empty,
// returning the originals otherwise.
func ProjectAll(entries []*Entry, attrs []string) []*Entry {
	if len(attrs) == 0 {
		return entries
	}
	out := make([]*Entry, len(entries))
	for i, e := range entries {
		out[i] = e.Project(attrs)
	}
	return out
}

// FormatResults renders a result set as concatenated LDIF records.
func FormatResults(entries []*Entry) string {
	var sb strings.Builder
	for i, e := range entries {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(e.LDIF())
	}
	return sb.String()
}
