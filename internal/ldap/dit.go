package ldap

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Scope selects how much of the tree a search covers, mirroring LDAP.
type Scope int

const (
	// ScopeBase searches only the base entry.
	ScopeBase Scope = iota
	// ScopeOne searches the base entry's immediate children.
	ScopeOne
	// ScopeSub searches the base entry and its whole subtree.
	ScopeSub
)

func (s Scope) String() string {
	switch s {
	case ScopeBase:
		return "base"
	case ScopeOne:
		return "one"
	case ScopeSub:
		return "sub"
	}
	return "invalid"
}

// DIT is a Directory Information Tree — the in-memory backend a GRIS or
// GIIS serves from. It is not safe for concurrent mutation; the services
// built on it serialize access the way a single slapd backend does.
//
// Every entry is indexed by attribute value on insert (see index.go), so
// equality, presence and range filters are served from postings instead
// of subtree walks. Entries belong to the tree once added: mutating an
// Entry in place after Add leaves the index stale — replace it with
// Upsert instead.
type DIT struct {
	entries  map[string]*Entry   // normalized DN -> entry
	children map[string][]string // normalized parent DN -> child keys, insertion order

	ids     map[string]int // entry key -> id
	byID    []*Entry       // id -> entry (nil when freed)
	keyByID []string       // id -> entry key
	freeIDs []int
	idx     map[string]*attrIndex       // lowercase attr -> postings
	indexed map[int]map[string][]string // id -> indexed value snapshot
	counts  map[string]int              // normalized DN -> subtree entry count

	// The DFS ordinals are the one piece of state a read path maintains
	// lazily, so they are the one piece guarded for concurrent readers:
	// ordMu serializes rebuilds and ordsValid publishes them (see
	// ensureOrdinals). All other mutation requires external exclusion.
	ordMu     sync.Mutex
	ords      []int // id -> global DFS position; guarded by ordMu
	ordsValid atomic.Bool
}

// NewDIT returns an empty tree containing only the implicit root.
func NewDIT() *DIT {
	return &DIT{
		entries:  make(map[string]*Entry),
		children: make(map[string][]string),
		ids:      make(map[string]int),
		idx:      make(map[string]*attrIndex),
		indexed:  make(map[int]map[string][]string),
		counts:   make(map[string]int),
	}
}

// Len reports the number of entries.
func (t *DIT) Len() int { return len(t.entries) }

// Add inserts an entry. The parent must already exist unless the entry is
// a suffix (depth-1) entry or its parent chain is missing entirely — MDS
// creates suffix entries like "Mds-Vo-name=local, o=grid" directly, so any
// missing ancestors are created as empty structural entries.
func (t *DIT) Add(e *Entry) error {
	key := e.DN.Norm()
	if key == "" {
		return fmt.Errorf("ldap: cannot add entry with empty DN")
	}
	if _, exists := t.entries[key]; exists {
		return fmt.Errorf("ldap: entry %q already exists", e.DN)
	}
	// Materialize missing ancestors as structural glue entries.
	for depth := 1; depth < e.DN.Depth(); depth++ {
		anc := DN(e.DN[e.DN.Depth()-depth:])
		if _, ok := t.entries[anc.Norm()]; !ok {
			glue := NewEntry(anc)
			glue.Set("objectclass", "MdsStructure")
			t.link(glue)
		}
	}
	t.link(e)
	return nil
}

func (t *DIT) link(e *Entry) {
	key := e.DN.Norm()
	t.entries[key] = e
	parent := e.DN.Parent().Norm()
	t.children[parent] = append(t.children[parent], key)
	t.indexEntry(t.allocID(key, e), e)
	t.bumpCounts(e.DN, 1)
	t.ordsValid.Store(false)
}

// Upsert inserts or replaces the entry at its DN. Replacement swaps the
// stored *Entry pointer rather than mutating the old entry in place, so
// a result set handed out before the Upsert keeps reading a consistent
// snapshot — the property the concurrent query path relies on when a
// refresh (under the owning service's write lock) overlaps a caller
// still decoding the previous answer.
func (t *DIT) Upsert(e *Entry) {
	key := e.DN.Norm()
	if _, ok := t.entries[key]; ok {
		// Keep tree links, replace content. Structure is unchanged so the
		// DFS ordinals survive; only the value postings are refreshed.
		id := t.ids[key]
		t.unindexEntry(id)
		fresh := e.Clone()
		t.entries[key] = fresh
		t.byID[id] = fresh
		t.indexEntry(id, fresh)
		return
	}
	if err := t.Add(e); err != nil {
		// Add only fails for duplicates (checked) or empty DN.
		panic(err)
	}
}

// Get returns the entry at dn.
func (t *DIT) Get(dn DN) (*Entry, bool) {
	e, ok := t.entries[dn.Norm()]
	return e, ok
}

// Delete removes the entry at dn and its entire subtree, returning the
// number of entries removed.
func (t *DIT) Delete(dn DN) int {
	key := dn.Norm()
	if _, ok := t.entries[key]; !ok {
		return 0
	}
	removed := 0
	var rec func(k string)
	rec = func(k string) {
		for _, c := range t.children[k] {
			rec(c)
		}
		delete(t.children, k)
		if _, ok := t.entries[k]; ok {
			delete(t.entries, k)
			t.unindexEntry(t.ids[k])
			t.freeID(k)
			delete(t.counts, k)
			removed++
		}
	}
	rec(key)
	for d := dn.Parent(); ; d = d.Parent() {
		t.counts[d.Norm()] -= removed
		if len(d) == 0 {
			break
		}
	}
	t.ordsValid.Store(false)
	// Unlink from parent.
	parent := dn.Parent().Norm()
	kids := t.children[parent]
	for i, c := range kids {
		if c == key {
			t.children[parent] = append(kids[:i], kids[i+1:]...)
			break
		}
	}
	return removed
}

// Children returns the immediate child entries of dn in insertion order.
func (t *DIT) Children(dn DN) []*Entry {
	keys := t.children[dn.Norm()]
	out := make([]*Entry, 0, len(keys))
	for _, k := range keys {
		if e, ok := t.entries[k]; ok {
			out = append(out, e)
		}
	}
	return out
}

// Search walks the tree from base with the given scope and returns entries
// matching filter, in deterministic (depth-first insertion) order. A nil
// filter matches everything. The returned visited count is the logical
// scan cost — the number of entries a subtree walk examines, the quantity
// the testbed charges CPU for — and is identical whether the filter was
// served from the index or by scanning (see SearchStats).
func (t *DIT) Search(base DN, scope Scope, filter Filter) ([]*Entry, int) {
	results, info := t.SearchStats(base, scope, filter)
	return results, info.Visited
}

// SearchStats is Search with execution-path accounting. Subtree searches
// with an indexable filter (equality, presence, >=/<= and AND/OR
// combinations of them — see planFilter) are answered from attribute
// postings; everything else walks the subtree. Both paths return exactly
// the same entries in the same depth-first order, and both report the
// same Visited count; Info.IndexHits and Info.Scanned record which path
// ran.
func (t *DIT) SearchStats(base DN, scope Scope, filter Filter) (results []*Entry, info SearchInfo) {
	baseEntry, ok := t.Get(base)
	if !ok && base.Depth() > 0 {
		return nil, SearchInfo{}
	}
	if scope == ScopeSub && filter != nil {
		if plan, _, planned := t.planFilter(filter); planned {
			return t.searchIndexed(base, plan, filter)
		}
	}
	info.Scanned = true
	match := func(e *Entry) {
		info.Visited++
		if filter == nil || filter.Matches(e) {
			results = append(results, e)
		}
	}
	switch scope {
	case ScopeBase:
		if baseEntry != nil {
			match(baseEntry)
		}
	case ScopeOne:
		for _, c := range t.Children(base) {
			match(c)
		}
	case ScopeSub:
		var rec func(dnKey string)
		rec = func(dnKey string) {
			if e, ok := t.entries[dnKey]; ok {
				match(e)
			}
			for _, c := range t.children[dnKey] {
				rec(c)
			}
		}
		if base.Depth() == 0 {
			// Whole tree: every suffix under the root.
			for _, c := range t.children[""] {
				rec(c)
			}
		} else {
			rec(base.Norm())
		}
	}
	return results, info
}

// DNs returns every entry DN in sorted normalized order, for stable test
// assertions.
func (t *DIT) DNs() []string {
	out := make([]string, 0, len(t.entries))
	for k := range t.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SizeBytes estimates the LDIF size of a result set.
func SizeBytes(entries []*Entry) int {
	n := 0
	for _, e := range entries {
		n += e.SizeBytes() + 1
	}
	return n
}

// ProjectAll applies Entry.Project to each entry when attrs is non-empty,
// returning the originals otherwise.
func ProjectAll(entries []*Entry, attrs []string) []*Entry {
	if len(attrs) == 0 {
		return entries
	}
	out := make([]*Entry, len(entries))
	for i, e := range entries {
		out[i] = e.Project(attrs)
	}
	return out
}

// FormatResults renders a result set as concatenated LDIF records.
func FormatResults(entries []*Entry) string {
	var sb strings.Builder
	for i, e := range entries {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(e.LDIF())
	}
	return sb.String()
}
