package ldap

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// Property: DN String/ParseDN round-trips for well-formed components.
func TestDNRoundTripProperty(t *testing.T) {
	clean := func(s string, fallback string) string {
		var sb strings.Builder
		for _, c := range s {
			if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' {
				sb.WriteRune(c)
			}
		}
		if sb.Len() == 0 {
			return fallback
		}
		return sb.String()
	}
	f := func(attrs, values []string) bool {
		n := len(attrs)
		if len(values) < n {
			n = len(values)
		}
		if n == 0 {
			return true
		}
		if n > 6 {
			n = 6
		}
		var dn DN
		for i := 0; i < n; i++ {
			dn = append(dn, RDN{
				Attr:  clean(attrs[i], fmt.Sprintf("a%d", i)),
				Value: clean(values[i], fmt.Sprintf("v%d", i)),
			})
		}
		again, err := ParseDN(dn.String())
		if err != nil {
			return false
		}
		return again.Equal(dn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Child/Parent are inverse.
func TestDNChildParentProperty(t *testing.T) {
	f := func(depth uint8) bool {
		dn := MustParseDN("o=grid")
		for i := 0; i < int(depth%6); i++ {
			dn = dn.Child("cn", fmt.Sprintf("n%d", i))
		}
		child := dn.Child("cn", "leaf")
		return child.Parent().Equal(dn) && child.IsDescendantOf(dn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a filter and its double negation match the same entries.
func TestFilterNegationInvarianceProperty(t *testing.T) {
	f := func(v uint8, ge uint8) bool {
		e := NewEntry(MustParseDN("o=grid"))
		e.Set("load", fmt.Sprintf("%d", v%100))
		base := fmt.Sprintf("(load>=%d)", ge%100)
		pos := MustParseFilter(base)
		neg := MustParseFilter("(!(!" + base + "))")
		return pos.Matches(e) == neg.Matches(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: conjunction is commutative.
func TestFilterAndCommutativeProperty(t *testing.T) {
	f := func(x, y uint8) bool {
		e := NewEntry(MustParseDN("o=grid"))
		e.Set("a", fmt.Sprintf("%d", x%8))
		e.Set("b", fmt.Sprintf("%d", y%8))
		ab := MustParseFilter("(&(a=3)(b=5))")
		ba := MustParseFilter("(&(b=5)(a=3))")
		return ab.Matches(e) == ba.Matches(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: search with ScopeSub from the root returns every entry that a
// presence filter matches, and projection never increases entry sizes.
func TestSearchProjectionShrinksProperty(t *testing.T) {
	f := func(n uint8) bool {
		dit := NewDIT()
		count := int(n%12) + 1
		for i := 0; i < count; i++ {
			e := NewEntry(MustParseDN(fmt.Sprintf("cn=e%d, o=grid", i)))
			e.Set("objectclass", "X")
			e.Set("payload", strings.Repeat("p", i+1))
			if err := dit.Add(e); err != nil {
				return false
			}
		}
		all, _ := dit.Search(nil, ScopeSub, MustParseFilter("(objectclass=X)"))
		if len(all) != count {
			return false
		}
		projected := ProjectAll(all, []string{"objectclass"})
		for i := range all {
			if projected[i].SizeBytes() > all[i].SizeBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
