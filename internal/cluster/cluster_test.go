package cluster

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestComputeTakesDemandOverSpeed(t *testing.T) {
	e := sim.NewEnv()
	m := NewMachine(e, "fast", 1, 2.0, nil)
	var done float64
	e.Go("job", func(p *sim.Proc) {
		m.Compute(p, 4) // 4 CPU-seconds at speed 2 -> 2 s
		done = p.Now()
	})
	e.RunAll()
	if math.Abs(done-2) > 1e-9 {
		t.Fatalf("done at %v, want 2", done)
	}
}

func TestDualCoreRunsTwoJobsUnimpeded(t *testing.T) {
	e := sim.NewEnv()
	m := NewMachine(e, "lucky", 2, 1.0, nil)
	var d1, d2 float64
	e.Go("a", func(p *sim.Proc) { m.Compute(p, 1); d1 = p.Now() })
	e.Go("b", func(p *sim.Proc) { m.Compute(p, 1); d2 = p.Now() })
	e.RunAll()
	if d1 != 1 || d2 != 1 {
		t.Fatalf("done at %v/%v, want 1/1", d1, d2)
	}
}

func TestLoad1TracksRunQueue(t *testing.T) {
	e := sim.NewEnv()
	m := NewMachine(e, "m", 1, 1.0, nil)
	// Keep 4 jobs runnable for 5 minutes; load1 should approach 4.
	for i := 0; i < 4; i++ {
		e.Go("j", func(p *sim.Proc) { m.Compute(p, 300.0/4) })
	}
	e.Go("probe", func(p *sim.Proc) {
		p.Sleep(299)
		if l := m.Load1(); math.Abs(l-4) > 0.1 {
			t.Errorf("load1 = %v after 5 busy minutes, want ~4", l)
		}
	})
	e.RunAll()
}

func TestLoad1DecaysWhenIdle(t *testing.T) {
	e := sim.NewEnv()
	m := NewMachine(e, "m", 1, 1.0, nil)
	e.Go("j", func(p *sim.Proc) { m.Compute(p, 120) })
	e.Go("probe", func(p *sim.Proc) {
		p.Sleep(120) // job ends
		busy := m.Load1()
		p.Sleep(180) // three time constants idle
		idle := m.Load1()
		if idle > busy/5 {
			t.Errorf("load1 did not decay: busy=%v idle=%v", busy, idle)
		}
	})
	e.RunAll()
}

func TestCPUBusyIntegralWindows(t *testing.T) {
	e := sim.NewEnv()
	m := NewMachine(e, "m", 2, 1.0, nil)
	e.Go("j", func(p *sim.Proc) { m.Compute(p, 10) }) // one core busy 10 s
	var first, second float64
	e.Go("probe", func(p *sim.Proc) {
		p.Sleep(10)
		first = m.CPUBusyIntegral()
		p.Sleep(10)
		second = m.CPUBusyIntegral()
	})
	e.RunAll()
	if math.Abs(first-5) > 1e-9 { // 50% util for 10 s
		t.Fatalf("first window integral = %v, want 5", first)
	}
	if math.Abs(second-first) > 1e-9 {
		t.Fatalf("idle window accumulated %v, want 0", second-first)
	}
}

func TestLinkSharesBandwidth(t *testing.T) {
	e := sim.NewEnv()
	l := NewLink(e, "lan", 100, 0) // 100 B/s
	var d1, d2 float64
	e.Go("a", func(p *sim.Proc) { l.Send(p, 100); d1 = p.Now() })
	e.Go("b", func(p *sim.Proc) { l.Send(p, 100); d2 = p.Now() })
	e.RunAll()
	// Two flows share 100 B/s: both need 2 s.
	if math.Abs(d1-2) > 1e-9 || math.Abs(d2-2) > 1e-9 {
		t.Fatalf("transfers done at %v/%v, want 2/2", d1, d2)
	}
}

func TestLinkLatencyAppliesOnceAfterBytes(t *testing.T) {
	e := sim.NewEnv()
	l := NewLink(e, "wan", 100, 0.5)
	var done float64
	e.Go("a", func(p *sim.Proc) { l.Send(p, 100); done = p.Now() })
	e.RunAll()
	if math.Abs(done-1.5) > 1e-9 {
		t.Fatalf("transfer done at %v, want 1.5", done)
	}
}

func TestTransferSameMachineIsFree(t *testing.T) {
	e := sim.NewEnv()
	tb := NewTestbed(e)
	var done float64 = -1
	e.Go("a", func(p *sim.Proc) {
		tb.Network.Transfer(p, tb.Host("lucky3"), tb.Host("lucky3"), 1e9)
		done = p.Now()
	})
	e.RunAll()
	if done != 0 {
		t.Fatalf("local transfer took %v, want 0", done)
	}
}

func TestTransferCrossSiteUsesWAN(t *testing.T) {
	e := sim.NewEnv()
	tb := NewTestbed(e)
	var done float64
	e.Go("a", func(p *sim.Proc) {
		tb.Network.Transfer(p, tb.Clients[0], tb.Host("lucky7"), 12.5e6)
		done = p.Now()
	})
	e.RunAll()
	// 12.5 MB across three 12.5 MB/s hops (src NIC, WAN, dst NIC) plus 5 ms
	// WAN latency: 3 s + 0.005 s.
	if math.Abs(done-3.005) > 1e-6 {
		t.Fatalf("transfer done at %v, want 3.005", done)
	}
}

func TestServerNICContention(t *testing.T) {
	// Many clients transferring to one server must contend on the server
	// NIC: 10 clients x 12.5MB to one host takes ~10x one transfer's
	// bottleneck time.
	e := sim.NewEnv()
	tb := NewTestbed(e)
	server := tb.Host("lucky7")
	var last float64
	for i := 0; i < 10; i++ {
		src := tb.Clients[i]
		e.Go("c", func(p *sim.Proc) {
			tb.Network.Transfer(p, src, server, 12.5e6)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	e.RunAll()
	if last < 10 || last > 35 {
		t.Fatalf("10 concurrent 1s-bottleneck transfers drained at %v, want ~10-30", last)
	}
}

func TestRTT(t *testing.T) {
	e := sim.NewEnv()
	tb := NewTestbed(e)
	lan := tb.Network.RTT(tb.Host("lucky0"), tb.Host("lucky3"))
	if math.Abs(lan-2*DefaultLANLatency) > 1e-12 {
		t.Fatalf("LAN RTT = %v", lan)
	}
	wan := tb.Network.RTT(tb.Clients[0], tb.Host("lucky0"))
	if math.Abs(wan-2*DefaultWANLatency) > 1e-12 {
		t.Fatalf("WAN RTT = %v", wan)
	}
	if tb.Network.RTT(tb.Host("lucky0"), tb.Host("lucky0")) != 0 {
		t.Fatal("self RTT should be 0")
	}
}

func TestTestbedTopology(t *testing.T) {
	e := sim.NewEnv()
	tb := NewTestbed(e)
	if len(tb.Lucky) != 7 {
		t.Fatalf("lucky machines = %d, want 7", len(tb.Lucky))
	}
	if _, ok := tb.Lucky["lucky2"]; ok {
		t.Fatal("lucky2 should not exist (matches the paper's hostnames)")
	}
	if len(tb.Clients) != 20 {
		t.Fatalf("clients = %d, want 20", len(tb.Clients))
	}
	for _, m := range tb.Lucky {
		if m.Cores != 2 {
			t.Fatalf("%s cores = %d, want 2", m.Name, m.Cores)
		}
	}
	for _, c := range tb.Clients {
		if c.Cores != 1 {
			t.Fatalf("%s cores = %d, want 1", c.Name, c.Cores)
		}
	}
}

func TestHostUnknownPanics(t *testing.T) {
	e := sim.NewEnv()
	tb := NewTestbed(e)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown host did not panic")
		}
	}()
	tb.Host("lucky2")
}

func TestSpreadUsersEven(t *testing.T) {
	e := sim.NewEnv()
	tb := NewTestbed(e)
	assign := SpreadUsers(tb.Clients, 100, 50)
	if len(assign) != 100 {
		t.Fatalf("assigned %d, want 100", len(assign))
	}
	counts := map[string]int{}
	for _, m := range assign {
		counts[m.Name]++
	}
	for name, c := range counts {
		if c > 50 {
			t.Fatalf("machine %s has %d users, cap is 50", name, c)
		}
	}
}

func TestSpreadUsersRespectsCap(t *testing.T) {
	e := sim.NewEnv()
	tb := NewTestbed(e)
	assign := SpreadUsers(tb.Clients, 600, 50)
	counts := map[string]int{}
	for _, m := range assign {
		counts[m.Name]++
	}
	for name, c := range counts {
		if c > 50 {
			t.Fatalf("machine %s has %d users, cap is 50", name, c)
		}
	}
	if len(counts) != 20 {
		t.Fatalf("600 users should use all 20 machines, used %d", len(counts))
	}
}
