package cluster

import (
	"fmt"

	"repro/internal/sim"
)

// Testbed is the paper's experimental platform: the Lucky cluster at
// Argonne (seven dual-CPU Linux machines named lucky0, lucky1, lucky3..7 on
// a 100 Mbps LAN) and a cluster of twenty client machines at the
// University of Chicago reached over a WAN.
type Testbed struct {
	Env     *sim.Env
	Network *Network
	ANL     *Site
	UC      *Site
	// Lucky maps the paper's host names (lucky0, lucky1, lucky3..lucky7)
	// to machines. Note lucky2 does not exist, matching the paper.
	Lucky map[string]*Machine
	// Clients are the UC machines uc00..uc19. The first fifteen are the
	// paper's faster 1208 MHz hosts; the rest are slightly slower.
	Clients []*Machine
}

// LuckyNames lists the Lucky hostnames in the paper's testbed.
var LuckyNames = []string{"lucky0", "lucky1", "lucky3", "lucky4", "lucky5", "lucky6", "lucky7"}

// NewTestbed builds the paper's testbed on a fresh view of env.
func NewTestbed(env *sim.Env) *Testbed {
	tb := &Testbed{
		Env:     env,
		Network: NewNetwork(env),
		ANL:     NewSite("anl", DefaultLANLatency),
		UC:      NewSite("uc", DefaultLANLatency),
		Lucky:   make(map[string]*Machine),
	}
	for _, name := range LuckyNames {
		// Dual 1133 MHz PIII: 2 cores at reference speed 1.0.
		tb.Lucky[name] = NewMachine(env, name, 2, 1.0, tb.ANL)
	}
	for i := 0; i < 20; i++ {
		speed := 1.05 // 1208 MHz relative to the 1133 MHz reference
		if i >= 15 {
			speed = 0.75 // "at least 756 MHz"
		}
		m := NewMachine(env, fmt.Sprintf("uc%02d", i), 1, speed, tb.UC)
		tb.Clients = append(tb.Clients, m)
	}
	tb.Network.ConnectSites(tb.ANL, tb.UC, DefaultWANBandwidth, DefaultWANLatency)
	return tb
}

// Host returns the named Lucky machine, panicking on unknown names so that
// experiment configuration errors surface immediately.
func (tb *Testbed) Host(name string) *Machine {
	m, ok := tb.Lucky[name]
	if !ok {
		panic("cluster: unknown lucky host " + name)
	}
	return m
}

// SpreadUsers distributes n simulated users over the client machines the
// way the paper does: evenly divided, at most maxPerMachine per machine.
// It returns a machine assignment of length n. If the client pool cannot
// hold n users under the cap, the overflow wraps around (the paper never
// exceeds 20×50 = 1000 users from UC).
func SpreadUsers(clients []*Machine, n, maxPerMachine int) []*Machine {
	if n <= 0 {
		return nil
	}
	if maxPerMachine <= 0 {
		maxPerMachine = 1
	}
	out := make([]*Machine, 0, n)
	// Use as few users per machine as an even split allows.
	per := (n + len(clients) - 1) / len(clients)
	if per > maxPerMachine {
		per = maxPerMachine
	}
	for len(out) < n {
		for _, m := range clients {
			for k := 0; k < per && len(out) < n; k++ {
				out = append(out, m)
			}
		}
	}
	return out
}
