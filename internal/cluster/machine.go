// Package cluster models the hardware testbed: machines with
// processor-sharing CPUs, network interfaces, shared wide-area links, and
// Unix-style load accounting. It reproduces the environment of the paper's
// experiments — the seven-node "Lucky" cluster at Argonne plus a
// twenty-node client cluster at the University of Chicago on the far side
// of a WAN link.
package cluster

import (
	"fmt"

	"repro/internal/sim"
)

// Machine is a simulated host. CPU demand is expressed in CPU-seconds; a
// machine with N cores serves up to N CPU-seconds per second, shared
// processor-style among however many jobs are runnable.
type Machine struct {
	Name  string
	Cores int
	// Speed scales CPU cost: a demand of d CPU-seconds takes d/Speed
	// seconds of service on an otherwise idle core. 1.0 is the reference
	// (1133 MHz PIII in the paper's testbed).
	Speed float64

	env   *sim.Env
	cpu   *sim.PS
	nic   *Link
	site  *Site
	load1 *sim.Damped
}

// NewMachine creates a machine with the given core count and speed and
// attaches it to site (which may be nil for standalone use).
func NewMachine(env *sim.Env, name string, cores int, speed float64, site *Site) *Machine {
	if cores < 1 {
		panic("cluster: machine needs >= 1 core")
	}
	if speed <= 0 {
		panic("cluster: machine speed must be > 0")
	}
	m := &Machine{
		Name:  name,
		Cores: cores,
		Speed: speed,
		env:   env,
		cpu:   sim.NewPS(env, cores, speed),
		load1: sim.NewDamped(60, env.Now()),
	}
	m.cpu.OnCount = func(t float64, n int) { m.load1.Observe(t, float64(n)) }
	m.nic = NewLink(env, name+"/nic", DefaultNICBandwidth, 0)
	m.site = site
	if site != nil {
		site.Machines = append(site.Machines, m)
	}
	return m
}

// Env returns the owning simulation environment.
func (m *Machine) Env() *sim.Env { return m.env }

// Site returns the site the machine belongs to, or nil.
func (m *Machine) Site() *Site { return m.site }

// NIC returns the machine's network interface link.
func (m *Machine) NIC() *Link { return m.nic }

// Compute blocks p while cpuSeconds of CPU demand are served on this
// machine under processor sharing.
func (m *Machine) Compute(p *sim.Proc, cpuSeconds float64) {
	m.cpu.Consume(p, cpuSeconds)
}

// Runnable reports the instantaneous run-queue length (jobs on the CPU).
func (m *Machine) Runnable() int { return m.cpu.Active() }

// Load1 reports the one-minute load average — the exponentially damped
// run-queue length, the quantity Ganglia reports as "load_one".
func (m *Machine) Load1() float64 { return m.load1.Value(m.env.Now()) }

// CPUBusyIntegral reports the accumulated CPU utilization integral (in
// busy-seconds, normalized to [0,1] utilization) up to the current time.
// Samplers difference it across an interval to obtain percent CPU load,
// the sum the paper measures as cpu_user + cpu_system.
func (m *Machine) CPUBusyIntegral() float64 {
	return m.cpu.UtilizationIntegral(m.env.Now())
}

func (m *Machine) String() string { return fmt.Sprintf("machine(%s)", m.Name) }
