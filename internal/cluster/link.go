package cluster

import "repro/internal/sim"

// Network capacity defaults. The paper's testbed is a 100 Mbps switched LAN
// at Argonne; the UC clients reach it over a metropolitan WAN.
const (
	// DefaultNICBandwidth is 100 Mbps in bytes/second.
	DefaultNICBandwidth = 100e6 / 8
	// DefaultLANLatency is the one-way latency between hosts on the same
	// site.
	DefaultLANLatency = 0.0005
	// DefaultWANBandwidth is the UC–ANL wide-area capacity (100 Mbps
	// regional research network).
	DefaultWANBandwidth = 100e6 / 8
	// DefaultWANLatency is the one-way UC–ANL latency.
	DefaultWANLatency = 0.005
)

// Link is a shared network pipe: all in-flight transfers share its
// bandwidth equally (processor sharing over bytes), and each transfer pays
// the link's one-way propagation latency once.
type Link struct {
	Name      string
	Bandwidth float64 // bytes per second
	Latency   float64 // one-way propagation delay, seconds

	env *sim.Env
	ps  *sim.PS
}

// NewLink returns a link with the given capacity in bytes/second and
// one-way latency in seconds.
func NewLink(env *sim.Env, name string, bandwidth, latency float64) *Link {
	return &Link{
		Name:      name,
		Bandwidth: bandwidth,
		Latency:   latency,
		env:       env,
		ps:        sim.NewPS(env, 1, bandwidth),
	}
}

// Send blocks p while bytes cross the link, sharing bandwidth with every
// concurrent transfer, then pays the propagation latency.
func (l *Link) Send(p *sim.Proc, bytes float64) {
	if bytes > 0 {
		l.ps.Consume(p, bytes)
	}
	if l.Latency > 0 {
		p.Sleep(l.Latency)
	}
}

// InFlight reports the number of concurrent transfers on the link.
func (l *Link) InFlight() int { return l.ps.Active() }

// Utilization reports time-averaged link utilization in [0,1].
func (l *Link) Utilization() float64 { return l.ps.Utilization() }

// Site is a collection of machines behind a common location, connected to
// other sites by WAN links.
type Site struct {
	Name     string
	Machines []*Machine
	// LANLatency is the one-way latency between two machines of this site.
	LANLatency float64
}

// NewSite returns an empty site.
func NewSite(name string, lanLatency float64) *Site {
	return &Site{Name: name, LANLatency: lanLatency}
}

// Network owns the inter-site links and computes transfer paths.
type Network struct {
	env *sim.Env
	// wan maps the unordered site pair "a|b" to its link.
	wan map[string]*Link
}

// NewNetwork returns an empty network.
func NewNetwork(env *sim.Env) *Network {
	return &Network{env: env, wan: make(map[string]*Link)}
}

func pairKey(a, b *Site) string {
	if a.Name < b.Name {
		return a.Name + "|" + b.Name
	}
	return b.Name + "|" + a.Name
}

// ConnectSites installs a WAN link between two sites.
func (n *Network) ConnectSites(a, b *Site, bandwidth, latency float64) *Link {
	l := NewLink(n.env, pairKey(a, b), bandwidth, latency)
	n.wan[pairKey(a, b)] = l
	return l
}

// WANLink returns the link between two sites, or nil when the sites are the
// same or unconnected.
func (n *Network) WANLink(a, b *Site) *Link {
	if a == b {
		return nil
	}
	return n.wan[pairKey(a, b)]
}

// Transfer moves bytes from machine src to machine dst: the bytes cross the
// sender's NIC, the WAN link if the machines are at different sites, and
// the receiver's NIC, plus the path's one-way propagation latency. It
// blocks p for the full transfer time. Transfers between a machine and
// itself cost nothing.
func (n *Network) Transfer(p *sim.Proc, src, dst *Machine, bytes float64) {
	if src == dst {
		return
	}
	if src.site == dst.site || src.site == nil || dst.site == nil {
		// Same site, or standalone machines: direct NIC-to-NIC path.
		if src.site != nil {
			p.Sleep(src.site.LANLatency)
		}
		src.nic.Send(p, bytes)
		dst.nic.Send(p, bytes)
		return
	}
	w := n.WANLink(src.site, dst.site)
	if w == nil {
		panic("cluster: no WAN link between " + src.Name + " and " + dst.Name)
	}
	src.nic.Send(p, bytes)
	w.Send(p, bytes)
	dst.nic.Send(p, bytes)
}

// RTT reports the round-trip propagation latency between two machines,
// excluding any transmission or queueing time.
func (n *Network) RTT(src, dst *Machine) float64 {
	if src == dst {
		return 0
	}
	if src.site == dst.site || src.site == nil || dst.site == nil {
		if src.site != nil {
			return 2 * src.site.LANLatency
		}
		return 0
	}
	w := n.WANLink(src.site, dst.site)
	if w == nil {
		return 0
	}
	return 2 * w.Latency
}
