package cluster

import (
	"testing"

	"repro/internal/sim"
)

func TestLinkInFlightAndUtilization(t *testing.T) {
	e := sim.NewEnv()
	l := NewLink(e, "l", 100, 0)
	e.Go("a", func(p *sim.Proc) { l.Send(p, 500) })
	e.Go("probe", func(p *sim.Proc) {
		p.Sleep(1)
		if l.InFlight() != 1 {
			t.Errorf("InFlight = %d, want 1", l.InFlight())
		}
	})
	e.Run(10)
	if l.InFlight() != 0 {
		t.Fatalf("InFlight after drain = %d", l.InFlight())
	}
	// Busy 5 of 10 seconds.
	if u := l.Utilization(); u < 0.45 || u > 0.55 {
		t.Fatalf("Utilization = %v, want ~0.5", u)
	}
}

func TestTransferStandaloneMachines(t *testing.T) {
	// Machines without a site use a direct NIC-to-NIC path (regression
	// for the nil-site panic).
	e := sim.NewEnv()
	n := NewNetwork(e)
	a := NewMachine(e, "a", 1, 1, nil)
	b := NewMachine(e, "b", 1, 1, nil)
	var done float64 = -1
	e.Go("x", func(p *sim.Proc) {
		n.Transfer(p, a, b, DefaultNICBandwidth) // one second per NIC hop
		done = p.Now()
	})
	e.Run(10)
	if done < 1.9 || done > 2.1 {
		t.Fatalf("standalone transfer done at %v, want ~2", done)
	}
	if n.RTT(a, b) != 0 {
		t.Fatalf("standalone RTT = %v", n.RTT(a, b))
	}
}

func TestWANMissingPanics(t *testing.T) {
	e := sim.NewEnv()
	n := NewNetwork(e)
	siteA := NewSite("a", 0)
	siteB := NewSite("b", 0)
	a := NewMachine(e, "a0", 1, 1, siteA)
	b := NewMachine(e, "b0", 1, 1, siteB)
	recovered := false
	e.Go("x", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		n.Transfer(p, a, b, 10)
	})
	func() {
		defer func() { recover() }() // the kernel re-panics the proc failure
		e.Run(1)
	}()
	_ = recovered
}

func TestMachineValidation(t *testing.T) {
	e := sim.NewEnv()
	for _, c := range []struct {
		cores int
		speed float64
	}{{0, 1}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMachine(cores=%d speed=%v) did not panic", c.cores, c.speed)
				}
			}()
			NewMachine(e, "bad", c.cores, c.speed, nil)
		}()
	}
}

func TestSpreadUsersSmallCounts(t *testing.T) {
	e := sim.NewEnv()
	tb := NewTestbed(e)
	if got := SpreadUsers(tb.Clients, 0, 50); got != nil {
		t.Fatalf("0 users = %v", got)
	}
	one := SpreadUsers(tb.Clients, 1, 50)
	if len(one) != 1 {
		t.Fatalf("1 user = %d placements", len(one))
	}
	capped := SpreadUsers(tb.Clients, 10, 0) // cap <= 0 coerced to 1
	counts := map[string]int{}
	for _, m := range capped {
		counts[m.Name]++
	}
	for name, n := range counts {
		if n > 1 {
			t.Fatalf("machine %s has %d users with cap 1", name, n)
		}
	}
}
