// Package workload drives simulated users against service nodes the way
// the paper's client scripts did: each user issues a blocking query, waits
// one second after the response, and repeats. Connection refusals are
// retried with TCP-style exponential backoff, which is what turns
// overload into the post-threshold load collapse the paper reports.
package workload

import (
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/sim"
)

// Paper measurement constants.
const (
	// ThinkTime is the one-second wait between receiving a response and
	// sending the next query.
	ThinkTime = 1.0
	// InitialBackoff and MaxBackoff bound the retry backoff after a
	// refused connection (TCP SYN retransmission behavior).
	InitialBackoff = 3.0
	MaxBackoff     = 120.0
	// MaxUsersPerClientMachine is the paper's cap of 50 simulated users
	// per client machine.
	MaxUsersPerClientMachine = 50
)

// Query issues one request and returns its demand outcome. It runs the
// real service logic (at simulation-time `now`) and converts the work
// performed into testbed demand.
type Query func(now float64) (node.Demand, error)

// User is one simulated user process.
type User struct {
	ID       int
	Machine  *cluster.Machine
	Server   *node.Server
	Query    Query
	Recorder *metrics.Recorder
	// Seed decorrelates user start times and backoff jitter.
	Seed uint64
	// Until stops the user after this simulation time (0 = run for the
	// whole simulation).
	Until float64
	// Think overrides the paper's fixed one-second wait when non-nil,
	// enabling other access patterns (Poisson, bursty).
	Think Pattern

	// Stats.
	Completed int
	Failures  int
}

// Start launches the user's query loop on env.
func (u *User) Start(env *sim.Env) {
	env.Go(userName(u.ID), func(p *sim.Proc) {
		rng := sim.NewRNG(0x9E3779B97F4A7C15 ^ u.Seed ^ uint64(u.ID))
		// Stagger start-up over the first think time so users do not
		// arrive in lockstep.
		p.Sleep(rng.Uniform(0, ThinkTime))
		backoff := InitialBackoff
		for u.Until <= 0 || p.Now() < u.Until {
			start := p.Now()
			demand, err := u.Query(p.Now())
			if err != nil {
				u.Failures++
				if u.Recorder != nil {
					u.Recorder.RecordError(p.Now())
				}
				p.Sleep(u.think(rng))
				continue
			}
			callErr := u.Server.Call(p, u.Machine, demand)
			for callErr == node.ErrRefused {
				if u.Recorder != nil {
					u.Recorder.RecordRefusal(p.Now())
				}
				p.Sleep(rng.Jitter(backoff, 0.25))
				if backoff *= 2; backoff > MaxBackoff {
					backoff = MaxBackoff
				}
				callErr = u.Server.Call(p, u.Machine, demand)
			}
			// Multiplicative decrease on success: a client that was
			// recently refused stays cautious, so sustained overload
			// drives the population's offered rate below the server's
			// capacity — the post-threshold load collapse of the paper's
			// Figures 7-8.
			if backoff /= 2; backoff < InitialBackoff {
				backoff = InitialBackoff
			}
			u.Completed++
			if u.Recorder != nil {
				u.Recorder.RecordQuery(start, p.Now())
			}
			p.Sleep(u.think(rng))
		}
	})
}

// think draws the user's next wait time.
func (u *User) think(rng *sim.RNG) float64 {
	if u.Think == nil {
		return ThinkTime
	}
	d := u.Think.NextThink(rng)
	if d < 0 {
		return 0
	}
	return d
}

func userName(id int) string {
	return "user-" + itoa(id)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Population launches n users spread across the client machines under the
// paper's placement rule and pointed at the same server and query.
type Population struct {
	Users []*User
}

// NewPopulation builds (but does not start) n users on the given client
// machines.
func NewPopulation(n int, clients []*cluster.Machine, server *node.Server, q Query, rec *metrics.Recorder) *Population {
	placement := cluster.SpreadUsers(clients, n, MaxUsersPerClientMachine)
	pop := &Population{}
	for i, m := range placement {
		pop.Users = append(pop.Users, &User{
			ID:       i,
			Machine:  m,
			Server:   server,
			Query:    q,
			Recorder: rec,
			Seed:     uint64(i) * 7919,
		})
	}
	return pop
}

// Start launches every user.
func (p *Population) Start(env *sim.Env) {
	for _, u := range p.Users {
		u.Start(env)
	}
}

// Completed sums completed queries across users.
func (p *Population) Completed() int {
	total := 0
	for _, u := range p.Users {
		total += u.Completed
	}
	return total
}
