package workload

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/sim"
)

func TestFixedThink(t *testing.T) {
	p := FixedThink{Seconds: 2.5}
	rng := sim.NewRNG(1)
	for i := 0; i < 5; i++ {
		if got := p.NextThink(rng); got != 2.5 {
			t.Fatalf("NextThink = %v", got)
		}
	}
}

func TestPoissonThinkMean(t *testing.T) {
	p := PoissonThink{Mean: 2}
	rng := sim.NewRNG(7)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += p.NextThink(rng)
	}
	if mean := sum / n; math.Abs(mean-2) > 0.1 {
		t.Fatalf("Poisson mean = %v, want ~2", mean)
	}
}

func TestBurstyThinkSchedule(t *testing.T) {
	b := &BurstyThink{BurstLen: 3, InBurst: 0.1, Gap: 30}
	rng := sim.NewRNG(1)
	var seq []float64
	for i := 0; i < 6; i++ {
		seq = append(seq, b.NextThink(rng))
	}
	// Two in-burst waits, then a gap, repeating.
	want := []float64{0.1, 0.1, 30, 0.1, 0.1, 30}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("burst sequence = %v, want %v", seq, want)
		}
	}
}

func TestThinkFuncAdapter(t *testing.T) {
	p := ThinkFunc(func(*sim.RNG) float64 { return 7 })
	if p.NextThink(nil) != 7 {
		t.Fatal("adapter broken")
	}
}

func TestUserWithPoissonPattern(t *testing.T) {
	// A Poisson user with the same mean think time completes a similar
	// number of queries as a fixed-think user over a long window.
	run := func(pattern Pattern) int {
		env := sim.NewEnv()
		tb := cluster.NewTestbed(env)
		srv := node.NewServer(env, tb.Host("lucky7"), tb.Network, node.Config{Workers: 4, Backlog: 16})
		rec := metrics.NewRecorder(0, 600)
		u := &User{
			ID: 0, Machine: tb.Clients[0], Server: srv,
			Query:    func(float64) (node.Demand, error) { return node.Demand{CPUSeconds: 0.01}, nil },
			Recorder: rec,
			Think:    pattern,
		}
		u.Start(env)
		env.Run(600)
		return rec.Completed()
	}
	fixed := run(FixedThink{Seconds: 1})
	poisson := run(PoissonThink{Mean: 1})
	if poisson < fixed/2 || poisson > fixed*2 {
		t.Fatalf("poisson completed %d vs fixed %d — same mean should be comparable", poisson, fixed)
	}
}

func TestBurstyUserIdlesBetweenBursts(t *testing.T) {
	env := sim.NewEnv()
	tb := cluster.NewTestbed(env)
	srv := node.NewServer(env, tb.Host("lucky7"), tb.Network, node.Config{Workers: 4, Backlog: 16})
	u := &User{
		ID: 0, Machine: tb.Clients[0], Server: srv,
		Query: func(float64) (node.Demand, error) { return node.Demand{}, nil },
		Think: &BurstyThink{BurstLen: 5, InBurst: 0.01, Gap: 60},
	}
	u.Start(env)
	env.Run(300)
	// ~5 bursts of 5 queries in 300s.
	if u.Completed < 15 || u.Completed > 40 {
		t.Fatalf("bursty user completed %d, want ~25", u.Completed)
	}
}

func TestNegativeThinkClamped(t *testing.T) {
	env := sim.NewEnv()
	tb := cluster.NewTestbed(env)
	srv := node.NewServer(env, tb.Host("lucky7"), tb.Network, node.Config{Workers: 4, Backlog: 16})
	u := &User{
		ID: 0, Machine: tb.Clients[0], Server: srv,
		Query: func(float64) (node.Demand, error) { return node.Demand{}, nil },
		Think: ThinkFunc(func(*sim.RNG) float64 { return -5 }),
		Until: 1,
	}
	u.Start(env)
	env.Run(2) // must terminate despite zero think time (Until applies)
	if u.Completed == 0 {
		t.Fatal("no queries completed")
	}
}
