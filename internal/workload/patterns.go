package workload

import "repro/internal/sim"

// The paper's future work includes "additional patterns of user access".
// Pattern generalizes the fixed one-second wait: each user draws its next
// think time from the pattern, enabling Poisson users, bursty monitoring
// sweeps, and heterogeneous mixes.

// Pattern produces the think time before a user's next query.
type Pattern interface {
	// NextThink returns the seconds to wait after a response before the
	// next query, using the user's private RNG.
	NextThink(rng *sim.RNG) float64
}

// FixedThink is the paper's pattern: a constant wait (1 second in every
// experiment).
type FixedThink struct{ Seconds float64 }

// NextThink returns the constant wait.
func (f FixedThink) NextThink(*sim.RNG) float64 { return f.Seconds }

// PoissonThink models independent users arriving at exponentially
// distributed intervals with the given mean think time.
type PoissonThink struct{ Mean float64 }

// NextThink draws an exponential wait.
func (p PoissonThink) NextThink(rng *sim.RNG) float64 { return rng.Exp(p.Mean) }

// BurstyThink models periodic monitoring sweeps: a burst of quick
// back-to-back queries followed by a long idle gap — a cron-style client
// polling a set of resources.
type BurstyThink struct {
	// BurstLen queries are issued InBurst seconds apart, then the user
	// idles for Gap seconds.
	BurstLen int
	InBurst  float64
	Gap      float64

	pos int
}

// NextThink cycles through the burst schedule.
func (b *BurstyThink) NextThink(*sim.RNG) float64 {
	b.pos++
	if b.BurstLen <= 1 {
		return b.Gap
	}
	if b.pos%b.BurstLen == 0 {
		return b.Gap
	}
	return b.InBurst
}

// ThinkFunc adapts a function to the Pattern interface.
type ThinkFunc func(rng *sim.RNG) float64

// NextThink calls the function.
func (f ThinkFunc) NextThink(rng *sim.RNG) float64 { return f(rng) }
