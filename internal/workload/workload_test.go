package workload

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/sim"
)

func rig(workers, backlog int) (*sim.Env, *cluster.Testbed, *node.Server) {
	env := sim.NewEnv()
	tb := cluster.NewTestbed(env)
	srv := node.NewServer(env, tb.Host("lucky7"), tb.Network, node.Config{
		Workers: workers, Backlog: backlog,
	})
	return env, tb, srv
}

func constQuery(d node.Demand) Query {
	return func(now float64) (node.Demand, error) { return d, nil }
}

func TestSingleUserPacing(t *testing.T) {
	// One user, 0.5s service, 1s think: ~each cycle takes 1.5s, so about
	// 60/1.5 = 40 queries in 60 seconds.
	env, _, srv := rig(2, 10)
	rec := metrics.NewRecorder(0, 60)
	pop := NewPopulation(1, []*cluster.Machine{cluster.NewMachine(env, "c", 1, 1, nil)}, srv,
		constQuery(node.Demand{CPUSeconds: 0.5}), rec)
	pop.Start(env)
	env.Run(61)
	got := rec.Completed()
	if got < 35 || got > 42 {
		t.Fatalf("completed = %d, want ~40", got)
	}
	if rt := rec.MeanResponseTime(); math.Abs(rt-0.5) > 0.1 {
		t.Fatalf("mean RT = %v, want ~0.5", rt)
	}
}

func TestClosedLoopLittlesLaw(t *testing.T) {
	// N users, service s, think Z, no contention: X ~ N/(s+Z).
	env, tb, srv := rig(64, 128)
	rec := metrics.NewRecorder(30, 330)
	pop := NewPopulation(20, tb.Clients, srv, constQuery(node.Demand{PostHoldSeconds: 1}), rec)
	pop.Start(env)
	env.Run(340)
	want := 20.0 / (1 + 1)
	if x := rec.Throughput(); math.Abs(x-want) > 1 {
		t.Fatalf("throughput = %v, want ~%v", x, want)
	}
}

func TestSaturationCapsThroughput(t *testing.T) {
	// 1 worker, 1s CPU per query: capacity 1 q/s no matter how many users.
	env, tb, srv := rig(1, 200)
	rec := metrics.NewRecorder(60, 360)
	pop := NewPopulation(100, tb.Clients, srv, constQuery(node.Demand{CPUSeconds: 1}), rec)
	pop.Start(env)
	env.Run(370)
	if x := rec.Throughput(); x > 1.1 {
		t.Fatalf("throughput = %v exceeds 1-worker capacity", x)
	}
	if x := rec.Throughput(); x < 0.8 {
		t.Fatalf("throughput = %v, want near capacity 1", x)
	}
	// Response time reflects queueing far beyond service time.
	if rt := rec.MeanResponseTime(); rt < 10 {
		t.Fatalf("mean RT = %v, want heavy queueing", rt)
	}
}

func TestRefusalsTriggerBackoffAndRetry(t *testing.T) {
	// Tiny backlog forces refusals; users must still complete queries via
	// retries, and refusals must be recorded.
	env, tb, srv := rig(1, 2)
	rec := metrics.NewRecorder(30, 330)
	pop := NewPopulation(80, tb.Clients, srv, constQuery(node.Demand{CPUSeconds: 0.5}), rec)
	pop.Start(env)
	env.Run(340)
	if rec.Refusals() == 0 {
		t.Fatal("no refusals despite tiny backlog and 80 users")
	}
	if rec.Completed() == 0 {
		t.Fatal("no queries completed despite retries")
	}
	// Throughput still bounded by the single worker.
	if x := rec.Throughput(); x > 2.2 {
		t.Fatalf("throughput = %v, want <= capacity 2", x)
	}
}

func TestQueryErrorCountsAsFailure(t *testing.T) {
	env, tb, srv := rig(1, 10)
	rec := metrics.NewRecorder(0, 30)
	calls := 0
	q := func(now float64) (node.Demand, error) {
		calls++
		return node.Demand{}, errTest
	}
	pop := NewPopulation(1, tb.Clients, srv, q, rec)
	pop.Start(env)
	env.Run(31)
	if rec.Errors() == 0 {
		t.Fatal("errors not recorded")
	}
	if pop.Users[0].Failures == 0 {
		t.Fatal("user failure counter not incremented")
	}
	if rec.Completed() != 0 {
		t.Fatal("failed queries counted as completed")
	}
	if calls < 25 {
		t.Fatalf("user retried only %d times in 30s; should pace at think time", calls)
	}
}

var errTest = errBox("boom")

type errBox string

func (e errBox) Error() string { return string(e) }

func TestPopulationPlacementRespectsCap(t *testing.T) {
	env, tb, srv := rig(2, 10)
	pop := NewPopulation(600, tb.Clients, srv, constQuery(node.Demand{}), nil)
	if len(pop.Users) != 600 {
		t.Fatalf("users = %d", len(pop.Users))
	}
	perMachine := map[string]int{}
	for _, u := range pop.Users {
		perMachine[u.Machine.Name]++
	}
	for name, n := range perMachine {
		if n > MaxUsersPerClientMachine {
			t.Fatalf("machine %s has %d users (cap %d)", name, n, MaxUsersPerClientMachine)
		}
	}
	_ = env
}

func TestUserUntilStops(t *testing.T) {
	env, tb, srv := rig(2, 10)
	u := &User{
		ID: 0, Machine: tb.Clients[0], Server: srv,
		Query: constQuery(node.Demand{}),
		Until: 10,
	}
	u.Start(env)
	env.Run(100)
	// ~10 queries in 10 seconds of think-paced querying.
	if u.Completed > 13 {
		t.Fatalf("user ran past Until: %d queries", u.Completed)
	}
	if u.Completed < 5 {
		t.Fatalf("user barely ran: %d queries", u.Completed)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, float64) {
		env, tb, srv := rig(2, 50)
		rec := metrics.NewRecorder(10, 110)
		pop := NewPopulation(30, tb.Clients, srv, constQuery(node.Demand{CPUSeconds: 0.05}), rec)
		pop.Start(env)
		env.Run(120)
		return rec.Completed(), rec.MeanResponseTime()
	}
	c1, rt1 := run()
	c2, rt2 := run()
	if c1 != c2 || rt1 != rt2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", c1, rt1, c2, rt2)
	}
}
