package mds

import (
	"fmt"
	"sync"

	"repro/internal/ldap"
)

// QueryStats counts the work a GRIS or GIIS performed for one request.
// The testbed's calibration converts these counts into CPU seconds.
type QueryStats struct {
	// ProvidersInvoked counts information-provider forks (cache misses).
	ProvidersInvoked int
	// ProviderForkWeight sums the fork weights of invoked providers.
	ProviderForkWeight float64
	// EntriesVisited counts directory entries examined by the search.
	EntriesVisited int
	// EntriesReturned counts entries in the result.
	EntriesReturned int
	// ResponseBytes is the LDIF size of the result.
	ResponseBytes int
	// IndexHits counts entries served from the DIT's attribute postings
	// (EntriesVisited still reports the logical scan cost either way).
	IndexHits int
	// ScanFallbacks counts searches answered by a subtree walk.
	ScanFallbacks int
}

// Add accumulates other into s.
func (s *QueryStats) Add(other QueryStats) {
	s.ProvidersInvoked += other.ProvidersInvoked
	s.ProviderForkWeight += other.ProviderForkWeight
	s.EntriesVisited += other.EntriesVisited
	s.EntriesReturned += other.EntriesReturned
	s.ResponseBytes += other.ResponseBytes
	s.IndexHits += other.IndexHits
	s.ScanFallbacks += other.ScanFallbacks
}

// GRIS is a Grid Resource Information Service: the resource-level
// information server. It serves a DIT populated by information providers,
// refreshed through a TTL cache: a query first freshens any expired
// provider data (paying the provider fork cost), then searches the tree.
//
// GRIS is safe for concurrent use. Queries whose provider data is all in
// cache — the paper's "data always in cache" configuration, its headline
// >10x throughput case — run under a shared read lock, so independent
// clients are served in parallel; a query that must re-invoke expired
// providers upgrades to the exclusive lock (double-checked, since another
// query may have refreshed meanwhile) and pays the serial cost, exactly
// the cache-miss serialization the paper measured.
type GRIS struct {
	Host string
	// CacheTTL is the provider-data time-to-live in seconds. Zero means
	// data is never cached (every query re-invokes every provider);
	// a very large value keeps data always in cache after warmup.
	CacheTTL float64

	mu        sync.RWMutex
	providers []*Provider // immutable after NewGRIS; len() is read lock-free
	expiry    []float64   // per-provider cache expiry; guarded by mu
	dit       *ldap.DIT   // cached provider entries; guarded by mu
}

// NewGRIS creates a GRIS for a host with the given providers. The cache
// starts cold; Warm can pre-populate it.
func NewGRIS(host string, cacheTTL float64, providers []*Provider) *GRIS {
	g := &GRIS{
		Host:      host,
		CacheTTL:  cacheTTL,
		providers: providers,
		expiry:    make([]float64, len(providers)),
		dit:       ldap.NewDIT(),
	}
	for i := range g.expiry {
		g.expiry[i] = -1 // cold
	}
	base := ldap.NewEntry(hostDN(host))
	base.Set("objectclass", "MdsHost")
	base.Set("Mds-Host-hn", host)
	if err := g.dit.Add(base); err != nil {
		panic(err) // fresh tree cannot collide
	}
	return g
}

// NumProviders reports the number of information providers.
func (g *GRIS) NumProviders() int { return len(g.providers) }

// Warm refreshes every provider at time now, pre-populating the cache the
// way the paper's "data always in cache" configuration did.
func (g *GRIS) Warm(now float64) QueryStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	var st QueryStats
	for i := range g.providers {
		st.Add(g.refresh(i, now))
	}
	return st
}

// fresh reports whether every provider's cached data is still live at
// time now (no query-path refresh needed). Callers hold mu.
func (g *GRIS) fresh(now float64) bool {
	for i := range g.expiry {
		if now >= g.expiry[i] {
			return false
		}
	}
	return true
}

// refresh invokes provider i and upserts its entries. Callers hold mu
// exclusively.
func (g *GRIS) refresh(i int, now float64) QueryStats {
	p := g.providers[i]
	entries := p.Generate(g.Host, now)
	for _, e := range entries {
		g.dit.Upsert(e)
	}
	g.expiry[i] = now + g.CacheTTL
	return QueryStats{ProvidersInvoked: 1, ProviderForkWeight: p.ForkWeight}
}

// Query runs an LDAP search over the GRIS data at time now, refreshing
// expired provider data first. A nil filter matches everything; attrs
// non-empty projects the result ("query part"). Cache-hit queries run
// under the read lock and proceed in parallel; a query that must refresh
// takes the write lock.
func (g *GRIS) Query(now float64, filter ldap.Filter, attrs []string) ([]*ldap.Entry, QueryStats) {
	g.mu.RLock()
	if g.fresh(now) {
		defer g.mu.RUnlock()
		return g.search(QueryStats{}, filter, attrs)
	}
	g.mu.RUnlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	var st QueryStats
	// Re-check under the write lock: another query may have refreshed
	// the expired providers while we waited.
	for i := range g.providers {
		if now >= g.expiry[i] {
			st.Add(g.refresh(i, now))
		}
	}
	return g.search(st, filter, attrs)
}

// search runs the LDAP search and accumulates its accounting into st.
// Callers hold mu (either mode).
func (g *GRIS) search(st QueryStats, filter ldap.Filter, attrs []string) ([]*ldap.Entry, QueryStats) {
	results, info := g.dit.SearchStats(hostDN(g.Host), ldap.ScopeSub, filter)
	results = ldap.ProjectAll(results, attrs)
	st.EntriesVisited += info.Visited
	st.EntriesReturned += len(results)
	st.ResponseBytes += ldap.SizeBytes(results)
	st.IndexHits += info.IndexHits
	if info.Scanned {
		st.ScanFallbacks++
	}
	return results, st
}

// Snapshot returns a copy of the GRIS's current entries, the payload it
// pushes to a GIIS at registration time.
func (g *GRIS) Snapshot(now float64) []*ldap.Entry {
	g.mu.RLock()
	if g.fresh(now) {
		defer g.mu.RUnlock()
		return g.snapshot()
	}
	g.mu.RUnlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range g.providers {
		if now >= g.expiry[i] {
			g.refresh(i, now)
		}
	}
	return g.snapshot()
}

// snapshot clones the current entries. Callers hold mu (either mode).
func (g *GRIS) snapshot() []*ldap.Entry {
	entries, _ := g.dit.Search(hostDN(g.Host), ldap.ScopeSub, nil)
	out := make([]*ldap.Entry, len(entries))
	for i, e := range entries {
		out[i] = e.Clone()
	}
	return out
}

// String identifies the GRIS.
func (g *GRIS) String() string {
	return fmt.Sprintf("GRIS(%s, %d providers)", g.Host, len(g.providers))
}
