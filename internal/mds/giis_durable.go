package mds

import (
	"fmt"

	"repro/internal/storage"
)

// Durable GIIS state. A storage-backed GIIS write-ahead-logs its
// soft-state registration table — add, renew, lapse — and periodically
// compacts the log into a snapshot, so a restarted GIIS reopens
// knowing exactly which sources were registered (and still enforcing
// MaxRegistrants against them). Cached source *data* is deliberately
// not logged: it is a cache of state the sources own, rebuilt by
// re-pulling when each source re-registers after the restart. Until a
// recovered registration's source returns, the entry is "detached" —
// it holds its directory slot and expiry but contributes no entries.
//
// WAL record grammar (see storage.Encoder for the primitive forms):
//
//	upsert = 0x01 id expiry     (register or renew)
//	expire = 0x02 now           (soft-state sweep that dropped entries)
//
// The snapshot is the registration table in registration order.
const (
	giisOpUpsert = 0x01
	giisOpExpire = 0x02
)

// OpenGIIS builds a GIIS on a durable store, replaying the store's
// recovered snapshot and WAL into the registration table before any
// new mutation is accepted. A nil store yields a volatile GIIS
// identical to NewGIIS's. snapEvery sets the snapshot cadence in WAL
// records (<= 0 means storage.DefaultSnapshotEvery).
func OpenGIIS(name string, cacheTTL, registrationTTL float64, st storage.Store, snapEvery int) (*GIIS, error) {
	g := NewGIIS(name, cacheTTL, registrationTTL)
	if st == nil {
		return g, nil
	}
	if snapEvery <= 0 {
		snapEvery = storage.DefaultSnapshotEvery
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	snap, recs := st.Recovered()
	if snap != nil {
		if err := g.restoreState(snap); err != nil {
			return nil, err
		}
	}
	for i, rec := range recs {
		if err := g.applyRecord(rec); err != nil {
			return nil, fmt.Errorf("mds: replaying giis record %d of %d: %w", i, len(recs), err)
		}
	}
	g.store = st
	g.snapEvery = snapEvery
	// Count the replayed tail toward the cadence so a GIIS that crashed
	// with a long WAL compacts soon after reopen.
	g.walRecords = len(recs)
	return g, nil
}

// Err reports the first durable-logging failure, or nil. Mutations on
// paths that cannot return an error (expiry during a query) record the
// failure here; once set, the GIIS stops logging (the WAL would have a
// hole) and the error surfaces again from Close.
func (g *GIIS) Err() error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.storeErr
}

// Close writes a final snapshot and releases the store, so a clean
// shutdown reopens from one state image with no replay. A volatile
// GIIS closes as a no-op.
func (g *GIIS) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.store == nil {
		return nil
	}
	err := g.storeErr
	if err == nil {
		err = g.snapshotLocked()
	}
	if cerr := g.store.Close(); err == nil {
		err = cerr
	}
	g.store = nil
	return err
}

// log appends one WAL record and compacts on cadence. A nil store (the
// volatile GIIS) makes it a no-op. Callers hold mu exclusively.
func (g *GIIS) log(rec []byte) error {
	if g.store == nil {
		return nil
	}
	if g.storeErr != nil {
		return g.storeErr
	}
	if err := g.store.Append(rec); err != nil {
		g.storeErr = err
		return err
	}
	g.walRecords++
	if g.walRecords >= g.snapEvery {
		return g.snapshotLocked()
	}
	return nil
}

// logExpire records a soft-state sweep that dropped registrations. The
// error is sticky in storeErr rather than returned: expiry happens
// inside queries, which must keep answering. Callers hold mu
// exclusively.
func (g *GIIS) logExpire(now float64) {
	var e storage.Encoder
	e.Byte(giisOpExpire)
	e.Float64(now)
	// log already recorded the failure in storeErr; see Err.
	_ = g.log(e.Bytes())
}

// snapshotLocked compacts the WAL into a snapshot of the registration
// table. Callers hold mu exclusively, with a live store.
func (g *GIIS) snapshotLocked() error {
	if err := g.store.SaveSnapshot(g.encodeState()); err != nil {
		g.storeErr = err
		return err
	}
	g.walRecords = 0
	return nil
}

// encodeState serializes the registration table in registration order.
// Callers hold mu.
func (g *GIIS) encodeState() []byte {
	var e storage.Encoder
	e.Uvarint(uint64(len(g.regOrder)))
	for _, id := range g.regOrder {
		e.String(id)
		e.Float64(g.regs[id].expiry)
	}
	return e.Bytes()
}

// restoreState loads a snapshot image into the (empty) registration
// table as detached registrations. Callers hold mu exclusively.
func (g *GIIS) restoreState(snap []byte) error {
	d := storage.NewDecoder(snap)
	n := d.Uvarint()
	for i := uint64(0); i < n; i++ {
		id := d.String()
		expiry := d.Float64()
		if d.Err() != nil {
			break
		}
		g.upsertRegistration(id, expiry)
	}
	if !d.Done() {
		return fmt.Errorf("mds: corrupt giis snapshot: %v", d.Err())
	}
	return nil
}

// applyRecord replays one WAL record through the same mutation helpers
// the live paths use, so a recovered GIIS holds exactly the
// registration table that logged it.
func (g *GIIS) applyRecord(rec []byte) error {
	d := storage.NewDecoder(rec)
	switch op := d.Byte(); op {
	case giisOpUpsert:
		id := d.String()
		expiry := d.Float64()
		if !d.Done() {
			return fmt.Errorf("mds: corrupt upsert record: %v", d.Err())
		}
		g.upsertRegistration(id, expiry)
		return nil
	case giisOpExpire:
		now := d.Float64()
		if !d.Done() {
			return fmt.Errorf("mds: corrupt expire record: %v", d.Err())
		}
		g.expire(now)
		return nil
	default:
		return fmt.Errorf("mds: unknown giis record op 0x%02x", op)
	}
}

// encodeUpsertRec serializes a register/renew mutation.
func encodeUpsertRec(id string, expiry float64) []byte {
	var e storage.Encoder
	e.Byte(giisOpUpsert)
	e.String(id)
	e.Float64(expiry)
	return e.Bytes()
}
