package mds

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/ldap"
	"repro/internal/storage"
)

// Registration limits observed by the paper: the GIIS crashed past 500
// registered GRIS, and could serve "query all" for at most 200.
const (
	// MaxRegistrants is the hard registration cap (the paper's GIIS
	// crashed when a 501st GRIS registered).
	MaxRegistrants = 500
)

// ErrGIISOverload reports that a registration or query exceeded the GIIS's
// capacity limits, reproducing the crashes the paper ran into.
type ErrGIISOverload struct{ Msg string }

func (e ErrGIISOverload) Error() string { return "mds: giis overload: " + e.Msg }

// registration is one source's soft-state entry in the GIIS.
type registration struct {
	id     string
	src    Source
	expiry float64
	// hostDNs are the host-level subtrees this source contributed, used
	// for cleanup when the registration lapses; hostOrder keeps listing
	// deterministic.
	hostDNs   map[string]ldap.DN
	hostOrder []string
}

// GIIS is a Grid Index Information Service: the aggregate directory.
// Sources — GRIS instances or lower-level GIISs — register with it under a
// soft-state protocol (registrations expire unless renewed) and the GIIS
// caches their data, answering queries from the cache while the cache TTL
// holds (the paper sets cachettl very large so the directory
// functionality is measured alone).
//
// GIIS is safe for concurrent use. Queries answered entirely from the
// cache — no lapsed registrations, no expired source data, the
// configuration the paper's cache experiments isolate — run under a
// shared read lock and proceed in parallel; a query that must expire
// registrations or re-pull sources upgrades to the exclusive lock
// (double-checked, since another query may have done the work meanwhile).
type GIIS struct {
	Name string
	// CacheTTL governs how long cached source data stays fresh. The
	// paper's directory-server experiments set this effectively infinite.
	CacheTTL float64
	// RegistrationTTL is the soft-state lifetime of a registration.
	RegistrationTTL float64

	mu        sync.RWMutex
	dit       *ldap.DIT                // aggregated directory; guarded by mu
	regs      map[string]*registration // guarded by mu
	regOrder  []string                 // registration order; guarded by mu
	cacheFill map[string]float64       // registration id -> cache expiry; guarded by mu

	// Durable logging state (zero/nil for a volatile GIIS); see
	// giis_durable.go.
	store      storage.Store // WAL+snapshot engine; guarded by mu
	storeErr   error         // first logging failure, sticky; guarded by mu
	walRecords int           // records since the last snapshot; guarded by mu
	snapEvery  int           // snapshot cadence; immutable after construction
}

// NewGIIS creates an empty GIIS.
func NewGIIS(name string, cacheTTL, registrationTTL float64) *GIIS {
	return &GIIS{
		Name:            name,
		CacheTTL:        cacheTTL,
		RegistrationTTL: registrationTTL,
		dit:             ldap.NewDIT(),
		regs:            make(map[string]*registration),
		cacheFill:       make(map[string]float64),
	}
}

// fresh reports whether the GIIS can answer at time now without mutating
// anything: no registration has lapsed and every cached subtree is still
// within its TTL. Callers hold mu.
func (g *GIIS) fresh(now float64) bool {
	for _, id := range g.regOrder {
		if now >= g.regs[id].expiry || now >= g.cacheFill[id] {
			return false
		}
	}
	return true
}

// NumRegistered reports the number of live registrations at time now.
func (g *GIIS) NumRegistered(now float64) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.expireAndLog(now)
	return len(g.regs)
}

// Register records (or renews) a source registration under the given
// unique id and pulls its current data into the cache. Both GRIS and GIIS
// values register, enabling the multi-level hierarchy of the paper's
// Figure 1. It fails past MaxRegistrants, as the paper's GIIS did.
func (g *GIIS) Register(id string, src Source, now float64) (QueryStats, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.expireAndLog(now)
	if _, renewing := g.regs[id]; !renewing && len(g.regs) >= MaxRegistrants {
		return QueryStats{}, ErrGIISOverload{Msg: fmt.Sprintf("registration %q exceeds %d sources", id, MaxRegistrants)}
	}
	reg := g.upsertRegistration(id, now+g.RegistrationTTL)
	reg.src = src
	if err := g.log(encodeUpsertRec(id, reg.expiry)); err != nil {
		return QueryStats{}, err
	}
	return g.fill(reg, now), nil
}

// upsertRegistration creates or renews the registration entry for id —
// the shared mutation core of Register and WAL replay (replay leaves
// src nil: a detached registration whose data returns when its source
// re-registers). Callers hold mu exclusively.
func (g *GIIS) upsertRegistration(id string, expiry float64) *registration {
	reg, ok := g.regs[id]
	if !ok {
		reg = &registration{id: id, hostDNs: make(map[string]ldap.DN)}
		g.regs[id] = reg
		g.regOrder = append(g.regOrder, id)
	}
	reg.expiry = expiry
	return reg
}

// hostLevelDN returns the host-level ancestor of dn (one RDN below the
// MDS suffix), or nil when dn is at or above the suffix.
func hostLevelDN(dn ldap.DN) ldap.DN {
	hostDepth := SuffixDN.Depth() + 1
	if dn.Depth() < hostDepth {
		return nil
	}
	return ldap.DN(dn[dn.Depth()-hostDepth:])
}

// fill refreshes the cached subtree for one registration, dropping host
// subtrees the source no longer reports (a downstream resource died and
// its soft state lapsed below us). Callers hold mu exclusively.
func (g *GIIS) fill(reg *registration, now float64) QueryStats {
	var st QueryStats
	if reg.src == nil {
		// A detached registration recovered from the WAL: its source has
		// not re-registered since the restart, so there is nothing to
		// pull yet. Stamp the cache anyway — the entry holds its
		// directory slot (and counts against MaxRegistrants) until the
		// source returns or its soft state lapses.
		g.cacheFill[reg.id] = now + g.CacheTTL
		return st
	}
	entries := reg.src.Snapshot(now)
	fresh := make(map[string]ldap.DN)
	var freshOrder []string
	for _, e := range entries {
		g.dit.Upsert(e)
		st.EntriesVisited++
		if host := hostLevelDN(e.DN); host != nil {
			key := host.Norm()
			if _, ok := fresh[key]; !ok {
				fresh[key] = host
				freshOrder = append(freshOrder, key)
			}
		}
	}
	for key, dn := range reg.hostDNs {
		if _, stillThere := fresh[key]; !stillThere {
			g.dit.Delete(dn)
		}
	}
	reg.hostDNs = fresh
	reg.hostOrder = freshOrder
	g.cacheFill[reg.id] = now + g.CacheTTL
	return st
}

// expire drops registrations whose soft state lapsed, removing their
// cached subtrees — the "dynamic cleaning of dead resources" the paper
// describes — and reports how many lapsed. Callers hold mu
// exclusively.
func (g *GIIS) expire(now float64) int {
	dropped := 0
	kept := g.regOrder[:0]
	for _, id := range g.regOrder {
		reg := g.regs[id]
		if now >= reg.expiry {
			for _, dn := range reg.hostDNs {
				g.dit.Delete(dn)
			}
			delete(g.regs, id)
			delete(g.cacheFill, id)
			dropped++
			continue
		}
		kept = append(kept, id)
	}
	g.regOrder = kept
	return dropped
}

// expireAndLog drops lapsed registrations and, when the sweep removed
// anything, records it in the WAL so a reopened GIIS does not
// resurrect dead sources. Callers hold mu exclusively.
func (g *GIIS) expireAndLog(now float64) {
	if g.expire(now) > 0 {
		g.logExpire(now)
	}
}

// Query searches the aggregated directory at time now. Expired cache
// subtrees are refreshed from their sources first (a no-op when CacheTTL
// is effectively infinite). A nil filter matches everything; non-empty
// attrs project each entry ("query part").
func (g *GIIS) Query(now float64, filter ldap.Filter, attrs []string) ([]*ldap.Entry, QueryStats, error) {
	//gridmon:nolint ctxflow compat entry point: pre-context callers have no deadline to propagate
	return g.QueryCtx(context.Background(), now, filter, attrs)
}

// QueryCtx is Query with a cancellation point between each registered
// source's cache refresh and before the directory search, so a caller
// abandoning a fan-heavy aggregate query stops the work mid-flight
// rather than only at the edges. Cache-hit queries run under the read
// lock and proceed in parallel; a query that must expire or refill takes
// the write lock.
func (g *GIIS) QueryCtx(ctx context.Context, now float64, filter ldap.Filter, attrs []string) ([]*ldap.Entry, QueryStats, error) {
	g.mu.RLock()
	if g.fresh(now) {
		defer g.mu.RUnlock()
		if err := ctx.Err(); err != nil {
			return nil, QueryStats{}, err
		}
		return g.search(QueryStats{}, filter, attrs)
	}
	g.mu.RUnlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.expireAndLog(now)
	var st QueryStats
	for _, id := range g.regOrder {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		if now >= g.cacheFill[id] {
			st.Add(g.fill(g.regs[id], now))
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	return g.search(st, filter, attrs)
}

// search runs the directory search and accumulates its accounting into
// st. Callers hold mu (either mode).
func (g *GIIS) search(st QueryStats, filter ldap.Filter, attrs []string) ([]*ldap.Entry, QueryStats, error) {
	results, info := g.dit.SearchStats(SuffixDN, ldap.ScopeSub, filter)
	// Structural glue entries materialized for tree shape are not data.
	data := results[:0]
	for _, e := range results {
		if e.First("objectclass") != "MdsStructure" {
			data = append(data, e)
		}
	}
	results = ldap.ProjectAll(data, attrs)
	st.EntriesVisited += info.Visited
	st.EntriesReturned += len(results)
	st.ResponseBytes += ldap.SizeBytes(results)
	st.IndexHits += info.IndexHits
	if info.Scanned {
		st.ScanFallbacks++
	}
	return results, st, nil
}

// Hosts lists hostnames currently served, in registration order (each
// source's hosts in first-contribution order is not guaranteed; within
// one registration the order follows the cached tree).
func (g *GIIS) Hosts(now float64) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.expireAndLog(now)
	var out []string
	seen := make(map[string]bool)
	for _, id := range g.regOrder {
		reg := g.regs[id]
		for _, key := range reg.hostOrder {
			dn := reg.hostDNs[key]
			if _, ok := g.dit.Get(dn); !ok {
				continue
			}
			host := dn[0].Value
			if !seen[host] {
				seen[host] = true
				out = append(out, host)
			}
		}
	}
	return out
}

// String identifies the GIIS.
func (g *GIIS) String() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return fmt.Sprintf("GIIS(%s, %d registered)", g.Name, len(g.regs))
}
