package mds

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ldap"
)

func TestDefaultProvidersCount(t *testing.T) {
	ps := DefaultProviders()
	if len(ps) != 10 {
		t.Fatalf("default providers = %d, want 10 (stock MDS 2.1 install)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Fatalf("duplicate provider %q", p.Name)
		}
		seen[p.Name] = true
		entries := p.Generate("lucky7", 0)
		if len(entries) == 0 {
			t.Fatalf("provider %q generated no entries", p.Name)
		}
		for _, e := range entries {
			if !e.DN.IsDescendantOf(hostDN("lucky7")) {
				t.Fatalf("provider %q entry %q not under host DN", p.Name, e.DN)
			}
		}
	}
}

func TestMemoryProviderCopies(t *testing.T) {
	ps := MemoryProviderCopies(90)
	if len(ps) != 90 {
		t.Fatalf("copies = %d", len(ps))
	}
	// Distinct names and distinct DNs so they coexist in one GRIS.
	a := ps[0].Generate("h", 0)[0]
	b := ps[1].Generate("h", 0)[0]
	if a.DN.Equal(b.DN) {
		t.Fatal("provider copies collide on DN")
	}
}

func TestGRISColdQueryInvokesAllProviders(t *testing.T) {
	g := NewGRIS("lucky7", 30, DefaultProviders())
	_, st := g.Query(0, nil, nil)
	if st.ProvidersInvoked != 10 {
		t.Fatalf("cold query invoked %d providers, want 10", st.ProvidersInvoked)
	}
	if st.EntriesReturned == 0 || st.ResponseBytes == 0 {
		t.Fatalf("cold query returned nothing: %+v", st)
	}
}

func TestGRISCacheHitSkipsProviders(t *testing.T) {
	g := NewGRIS("lucky7", 30, DefaultProviders())
	g.Warm(0)
	_, st := g.Query(1, nil, nil)
	if st.ProvidersInvoked != 0 {
		t.Fatalf("warm query invoked %d providers, want 0", st.ProvidersInvoked)
	}
}

func TestGRISCacheExpires(t *testing.T) {
	g := NewGRIS("lucky7", 30, DefaultProviders())
	g.Warm(0)
	_, st := g.Query(31, nil, nil)
	if st.ProvidersInvoked != 10 {
		t.Fatalf("expired query invoked %d providers, want 10", st.ProvidersInvoked)
	}
}

func TestGRISNoCacheAlwaysInvokes(t *testing.T) {
	g := NewGRIS("lucky7", 0, DefaultProviders())
	for i := 0; i < 3; i++ {
		_, st := g.Query(float64(i), nil, nil)
		if st.ProvidersInvoked != 10 {
			t.Fatalf("nocache query %d invoked %d providers", i, st.ProvidersInvoked)
		}
	}
}

func TestGRISFilterAndProjection(t *testing.T) {
	g := NewGRIS("lucky7", 1e9, DefaultProviders())
	g.Warm(0)
	all, stAll := g.Query(1, nil, nil)
	cpuOnly, _ := g.Query(1, ldap.MustParseFilter("(objectclass=MdsCpu)"), nil)
	if len(cpuOnly) != 1 {
		t.Fatalf("cpu filter returned %d entries", len(cpuOnly))
	}
	if len(cpuOnly) >= len(all) {
		t.Fatal("filter did not narrow result")
	}
	_, stPart := g.Query(1, nil, []string{"Mds-Cpu-Free-1minX100"})
	if stPart.ResponseBytes >= stAll.ResponseBytes {
		t.Fatalf("projection bytes %d >= full bytes %d", stPart.ResponseBytes, stAll.ResponseBytes)
	}
}

func TestGRISSnapshotIsolated(t *testing.T) {
	g := NewGRIS("lucky7", 1e9, DefaultProviders())
	snap := g.Snapshot(0)
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	snap[0].Set("tampered", "yes")
	again := g.Snapshot(1)
	for _, e := range again {
		if e.Has("tampered") {
			t.Fatal("snapshot shares storage with GRIS")
		}
	}
}

func newTestGIIS(t *testing.T, nGRIS int) (*GIIS, []*GRIS) {
	t.Helper()
	giis := NewGIIS("giis0", 1e9, 600)
	var gs []*GRIS
	for i := 0; i < nGRIS; i++ {
		g := NewGRIS(fmt.Sprintf("lucky%d", i+3), 1e9, DefaultProviders())
		if _, err := giis.Register(fmt.Sprintf("gris-%d", i), g, 0); err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
	}
	return giis, gs
}

func TestGIISAggregatesRegisteredGRIS(t *testing.T) {
	giis, _ := newTestGIIS(t, 5)
	if n := giis.NumRegistered(1); n != 5 {
		t.Fatalf("registered = %d, want 5", n)
	}
	results, st, err := giis.Query(1, ldap.MustParseFilter("(objectclass=MdsCpu)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("cpu entries = %d, want 5 (one per GRIS)", len(results))
	}
	if st.ProvidersInvoked != 0 {
		t.Fatal("GIIS query should serve from cache, not invoke providers")
	}
}

func TestGIISQueryPartSmaller(t *testing.T) {
	giis, _ := newTestGIIS(t, 5)
	_, full, _ := giis.Query(1, nil, nil)
	_, part, _ := giis.Query(1, ldap.MustParseFilter("(objectclass=MdsCpu)"), []string{"Mds-Cpu-Free-1minX100"})
	if part.ResponseBytes >= full.ResponseBytes {
		t.Fatalf("query-part bytes %d >= query-all bytes %d", part.ResponseBytes, full.ResponseBytes)
	}
	if part.EntriesVisited != full.EntriesVisited {
		t.Fatalf("both should walk the whole tree: %d vs %d", part.EntriesVisited, full.EntriesVisited)
	}
}

func TestGIISSoftStateExpiry(t *testing.T) {
	giis, _ := newTestGIIS(t, 3)
	// TTL is 600; at t=601 everything lapses.
	if n := giis.NumRegistered(601); n != 0 {
		t.Fatalf("registered after expiry = %d, want 0", n)
	}
	results, _, _ := giis.Query(601, nil, nil)
	if len(results) != 0 {
		t.Fatalf("query after expiry returned %d entries", len(results))
	}
}

func TestGIISRenewalKeepsRegistration(t *testing.T) {
	giis, gs := newTestGIIS(t, 1)
	if _, err := giis.Register("gris-0", gs[0], 500); err != nil {
		t.Fatal(err)
	}
	if n := giis.NumRegistered(900); n != 1 {
		t.Fatalf("renewed registration lapsed: %d", n)
	}
}

func TestGIISRegistrationCap(t *testing.T) {
	giis := NewGIIS("giis0", 1e9, 1e9)
	g := NewGRIS("host", 1e9, DefaultProviders()[:1])
	for i := 0; i < MaxRegistrants; i++ {
		if _, err := giis.Register(fmt.Sprintf("g%d", i), g, 0); err != nil {
			t.Fatalf("registration %d failed: %v", i, err)
		}
	}
	_, err := giis.Register("one-too-many", g, 0)
	if err == nil {
		t.Fatal("registration past cap succeeded")
	}
	if _, ok := err.(ErrGIISOverload); !ok {
		t.Fatalf("error type %T, want ErrGIISOverload", err)
	}
}

func TestGIISHosts(t *testing.T) {
	giis, _ := newTestGIIS(t, 3)
	hosts := giis.Hosts(1)
	if len(hosts) != 3 || hosts[0] != "lucky3" {
		t.Fatalf("hosts = %v", hosts)
	}
}

func TestGIISDeadGRISCleanupRemovesSubtree(t *testing.T) {
	giis, gs := newTestGIIS(t, 2)
	// Renew only gris-0; gris-1 dies.
	if _, err := giis.Register("gris-0", gs[0], 599); err != nil {
		t.Fatal(err)
	}
	results, _, _ := giis.Query(601, ldap.MustParseFilter("(objectclass=MdsCpu)"), nil)
	if len(results) != 1 {
		t.Fatalf("entries after partial expiry = %d, want 1", len(results))
	}
	if !strings.Contains(results[0].DN.String(), "lucky3") {
		t.Fatalf("wrong survivor: %s", results[0].DN)
	}
}

func TestQueryStatsAdd(t *testing.T) {
	a := QueryStats{ProvidersInvoked: 1, EntriesVisited: 2, ResponseBytes: 3}
	a.Add(QueryStats{ProvidersInvoked: 10, EntriesReturned: 5, ProviderForkWeight: 1.5})
	if a.ProvidersInvoked != 11 || a.EntriesVisited != 2 || a.EntriesReturned != 5 ||
		a.ResponseBytes != 3 || a.ProviderForkWeight != 1.5 {
		t.Fatalf("Add result %+v", a)
	}
}
