package mds

import (
	"fmt"
	"testing"

	"repro/internal/ldap"
)

// buildTwoLevel builds top <- {mid1, mid2} <- 2 GRIS each.
func buildTwoLevel(t *testing.T) (*GIIS, []*GIIS) {
	t.Helper()
	top := NewGIIS("top", 1e9, 600)
	var mids []*GIIS
	host := 0
	for m := 0; m < 2; m++ {
		mid := NewGIIS(fmt.Sprintf("mid%d", m), 1e9, 600)
		for k := 0; k < 2; k++ {
			g := NewGRIS(fmt.Sprintf("host%d", host), 1e9, DefaultProviders())
			host++
			if _, err := mid.Register(fmt.Sprintf("gris-%d", k), g, 0); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := top.Register(fmt.Sprintf("mid-%d", m), mid, 0); err != nil {
			t.Fatal(err)
		}
		mids = append(mids, mid)
	}
	return top, mids
}

func TestGIISRegistersWithGIIS(t *testing.T) {
	top, _ := buildTwoLevel(t)
	if n := top.NumRegistered(1); n != 2 {
		t.Fatalf("top registrations = %d, want 2 (mid-level GIISs)", n)
	}
	// The top level serves the union of all four hosts' data.
	results, _, err := top.Query(1, ldap.MustParseFilter("(objectclass=MdsCpu)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("cpu entries at top = %d, want 4", len(results))
	}
	hosts := top.Hosts(1)
	if len(hosts) != 4 {
		t.Fatalf("hosts at top = %v", hosts)
	}
}

func TestThreeLevelHierarchy(t *testing.T) {
	top, _ := buildTwoLevel(t)
	root := NewGIIS("root", 1e9, 600)
	if _, err := root.Register("top", top, 0); err != nil {
		t.Fatal(err)
	}
	results, _, err := root.Query(1, ldap.MustParseFilter("(objectclass=MdsCpu)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("cpu entries at root = %d, want 4", len(results))
	}
}

func TestMidLevelExpiryPropagatesOnRefill(t *testing.T) {
	top, mids := buildTwoLevel(t)
	// Make the top's cache short-lived so it re-snapshots the mids.
	top.CacheTTL = 10
	// mid0's GRIS registrations lapse at t=601; renew only mid
	// registrations at the top.
	if _, err := top.Register("mid-0", mids[0], 599); err != nil {
		t.Fatal(err)
	}
	if _, err := top.Register("mid-1", mids[1], 599); err != nil {
		t.Fatal(err)
	}
	// At t=700 mid-level GRIS registrations have lapsed; the top's
	// refreshed snapshot must shrink. (The hosts remain cached at the top
	// until its own cache expires, which it does at 609.)
	results, _, err := top.Query(700, ldap.MustParseFilter("(objectclass=MdsCpu)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("entries after downstream expiry = %d, want 0", len(results))
	}
}

func TestHierarchySnapshotExcludesGlue(t *testing.T) {
	top, _ := buildTwoLevel(t)
	for _, e := range top.Snapshot(1) {
		if e.First("objectclass") == "MdsStructure" {
			t.Fatal("snapshot leaked structural glue entries")
		}
	}
}

func TestGRISSourceStillWorks(t *testing.T) {
	// Regression: plain GRIS registration (the paper's configuration)
	// keeps working through the generalized Source interface.
	giis := NewGIIS("g", 1e9, 600)
	gris := NewGRIS("lucky7", 1e9, DefaultProviders())
	if _, err := giis.Register("r", gris, 0); err != nil {
		t.Fatal(err)
	}
	hosts := giis.Hosts(1)
	if len(hosts) != 1 || hosts[0] != "lucky7" {
		t.Fatalf("hosts = %v", hosts)
	}
}

func TestHostsDeterministicOrder(t *testing.T) {
	giis := NewGIIS("g", 1e9, 600)
	for i := 0; i < 5; i++ {
		g := NewGRIS(fmt.Sprintf("h%d", i), 1e9, DefaultProviders())
		if _, err := giis.Register(fmt.Sprintf("r%d", i), g, 0); err != nil {
			t.Fatal(err)
		}
	}
	first := giis.Hosts(1)
	for trial := 0; trial < 5; trial++ {
		again := giis.Hosts(1)
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("host order varies: %v vs %v", first, again)
			}
		}
	}
}
