package mds

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/storage"
)

var errKilled = errors.New("injected crash")

// killWriter passes through the first limit bytes and then fails every
// write, tearing whatever WAL frame is in flight.
type killWriter struct {
	w       io.Writer
	limit   int
	written int
}

func (c *killWriter) Write(p []byte) (int, error) {
	if c.written >= c.limit {
		return 0, errKilled
	}
	n := c.limit - c.written
	if n > len(p) {
		n = len(p)
	}
	nw, err := c.w.Write(p[:n])
	c.written += nw
	if err != nil {
		return nw, err
	}
	if nw < len(p) {
		return nw, errKilled
	}
	return nw, nil
}

// dumpRegistrations renders the GIIS registration table — id, expiry,
// order — the durable state the WAL covers.
func dumpRegistrations(g *GIIS) string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var b strings.Builder
	for _, id := range g.regOrder {
		fmt.Fprintf(&b, "%s expiry=%g\n", id, g.regs[id].expiry)
	}
	return b.String()
}

// TestGIISDurableDifferential crashes a filestore-backed GIIS at every
// WAL record boundary (and mid-frame) of a register/renew sequence and
// compares the recovered registration table against a volatile oracle
// that applied exactly the surviving ops.
func TestGIISDurableDifferential(t *testing.T) {
	grises := make([]*GRIS, 6)
	for i := range grises {
		grises[i] = NewGRIS(fmt.Sprintf("host%d", i), 1e12, DefaultProviders())
		grises[i].Warm(0)
	}
	type op struct {
		id  string
		src Source
		now float64
	}
	var ops []op
	for i := 0; i < 18; i++ {
		ops = append(ops, op{id: fmt.Sprintf("gris-%d", i%6), src: grises[i%6], now: float64(i)})
	}

	// Pass 1: learn each record's end offset in the WAL byte stream.
	var ends []int
	total := 0
	{
		st, err := storage.OpenFile(t.TempDir(), storage.Options{WrapWAL: func(w io.Writer) io.Writer {
			return writerFunc(func(p []byte) (int, error) {
				total += len(p)
				ends = append(ends, total)
				return w.Write(p)
			})
		}})
		if err != nil {
			t.Fatal(err)
		}
		g, err := OpenGIIS("giis", 1e12, 1e12, st, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range ops {
			if _, err := g.Register(o.id, o.src, o.now); err != nil {
				t.Fatal(err)
			}
		}
		if len(ends) != len(ops) {
			t.Fatalf("%d ops appended %d records, want 1:1", len(ops), len(ends))
		}
		if err := g.Close(); err != nil {
			t.Fatal(err)
		}
	}

	cuts := []int{0}
	for k, end := range ends {
		cuts = append(cuts, end)
		start := 0
		if k > 0 {
			start = ends[k-1]
		}
		cuts = append(cuts, start+(end-start)/2)
	}
	for _, cut := range cuts {
		survivors := 0
		for _, end := range ends {
			if end <= cut {
				survivors++
			}
		}
		dir := t.TempDir()
		st, err := storage.OpenFile(dir, storage.Options{WrapWAL: func(w io.Writer) io.Writer {
			return &killWriter{w: w, limit: cut}
		}})
		if err != nil {
			t.Fatal(err)
		}
		g, err := OpenGIIS("giis", 1e12, 1e12, st, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range ops {
			if _, err := g.Register(o.id, o.src, o.now); err != nil {
				if !errors.Is(err, errKilled) {
					t.Fatalf("cut %d: unexpected register error: %v", cut, err)
				}
				break // killed mid-write
			}
		}
		st.Close()

		reopened, err := storage.OpenFile(dir, storage.Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		g2, err := OpenGIIS("giis", 1e12, 1e12, reopened, 0)
		if err != nil {
			t.Fatalf("cut %d: recover: %v", cut, err)
		}
		oracle := NewGIIS("oracle", 1e12, 1e12)
		for _, o := range ops[:survivors] {
			if _, err := oracle.Register(o.id, o.src, o.now); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := dumpRegistrations(g2), dumpRegistrations(oracle); got != want {
			t.Fatalf("cut %d (%d surviving records): recovered registrations diverge from oracle\ngot:\n%swant:\n%s",
				cut, survivors, got, want)
		}
		if err := g2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestGIISDetachedReattach pins the re-pull contract: cached source
// data is not logged, so a recovered registration serves nothing until
// its source re-registers — and then serves exactly what a never-
// crashed GIIS would.
func TestGIISDetachedReattach(t *testing.T) {
	gris := NewGRIS("lucky3", 1e12, DefaultProviders())
	gris.Warm(0)
	dir := t.TempDir()
	st, err := storage.OpenFile(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := OpenGIIS("giis", 1e12, 1e12, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Register("gris-0", gris, 0); err != nil {
		t.Fatal(err)
	}
	before, _, err := g.Query(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("no entries served before the crash")
	}
	st.Close() // crash

	reopened, err := storage.OpenFile(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := OpenGIIS("giis", 1e12, 1e12, reopened, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if n := g2.NumRegistered(0); n != 1 {
		t.Fatalf("NumRegistered after recovery = %d, want 1 (detached)", n)
	}
	detached, _, err := g2.Query(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(detached) != 0 {
		t.Fatalf("detached registration served %d entries, want 0 until the source re-registers", len(detached))
	}
	// The source comes back (as it would within one soft-state period):
	// the directory re-pulls and serves the same data as before.
	if _, err := g2.Register("gris-0", gris, 1); err != nil {
		t.Fatal(err)
	}
	after, _, err := g2.Query(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("reattached query returned %d entries, want %d", len(after), len(before))
	}
	for i := range before {
		if !after[i].DN.Equal(before[i].DN) {
			t.Fatalf("entry %d: DN %v != pre-crash %v", i, after[i].DN, before[i].DN)
		}
	}
}

// TestGIISMaxRegistrantsAcrossRestart is the overload satellite: a
// GIIS that crashed at the registration cap must reopen with exactly
// its pre-crash registrations and keep enforcing the cap against them
// — a restart must not quietly double the paper's 500-source crash
// threshold.
func TestGIISMaxRegistrantsAcrossRestart(t *testing.T) {
	gris := NewGRIS("host", 1e12, DefaultProviders())
	dir := t.TempDir()
	st, err := storage.OpenFile(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := OpenGIIS("giis", 1e12, 1e12, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < MaxRegistrants; i++ {
		if _, err := g.Register(fmt.Sprintf("g%d", i), gris, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Register("over", gris, 0); err == nil {
		t.Fatal("registration past the cap succeeded before the crash")
	}
	st.Close() // crash at the cap

	reopened, err := storage.OpenFile(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := OpenGIIS("giis", 1e12, 1e12, reopened, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if n := g2.NumRegistered(0); n != MaxRegistrants {
		t.Fatalf("NumRegistered after recovery = %d, want %d", n, MaxRegistrants)
	}
	var overload ErrGIISOverload
	if _, err := g2.Register("over", gris, 0); !errors.As(err, &overload) {
		t.Fatalf("new registration after recovery = %v, want overload (cap must survive restart)", err)
	}
	// Renewing a recovered registration is not a new source: it must
	// succeed at the cap, rebinding the returned source.
	if _, err := g2.Register("g0", gris, 0); err != nil {
		t.Fatalf("renewing a recovered registration at the cap: %v", err)
	}
}

// TestGIISExpiryDurable pins that a logged soft-state sweep holds
// across restart: lapsed sources stay gone even when the reopened
// GIIS is asked at an earlier clock.
func TestGIISExpiryDurable(t *testing.T) {
	gris := NewGRIS("host", 1e12, DefaultProviders())
	dir := t.TempDir()
	st, err := storage.OpenFile(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := OpenGIIS("giis", 1e12, 100, st, 0) // short registration TTL
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Register("lapses", gris, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Register("renewed", gris, 450); err != nil {
		t.Fatal(err)
	}
	if n := g.NumRegistered(500); n != 1 { // sweeps "lapses", logs it
		t.Fatalf("NumRegistered(500) = %d, want 1", n)
	}
	st.Close() // crash

	reopened, err := storage.OpenFile(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := OpenGIIS("giis", 1e12, 100, reopened, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if n := g2.NumRegistered(0); n != 1 {
		t.Fatalf("recovered NumRegistered(0) = %d, want the lapsed source to stay dropped", n)
	}
	if got := dumpRegistrations(g2); !strings.HasPrefix(got, "renewed ") {
		t.Fatalf("recovered registrations = %q, want only the renewed source", got)
	}
}
