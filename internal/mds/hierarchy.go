package mds

import (
	"repro/internal/ldap"
)

// Source is anything a GIIS can aggregate: a GRIS, or another GIIS ("any
// GRIS or GIIS can register with another, making this approach modular
// and extensible" — the paper's Figure 1). Snapshot returns the source's
// current entries; implementations return clones the GIIS may retain.
type Source interface {
	Snapshot(now float64) []*ldap.Entry
}

// Snapshot returns a copy of all data entries the GIIS currently serves,
// making a GIIS registrable with a higher-level GIIS. Like QueryCtx, a
// fully cached snapshot runs under the read lock; refreshing takes the
// write lock.
func (g *GIIS) Snapshot(now float64) []*ldap.Entry {
	g.mu.RLock()
	if g.fresh(now) {
		defer g.mu.RUnlock()
		return g.snapshot()
	}
	g.mu.RUnlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.expireAndLog(now)
	for _, id := range g.regOrder {
		if now >= g.cacheFill[id] {
			g.fill(g.regs[id], now)
		}
	}
	return g.snapshot()
}

// snapshot clones the current data entries. Callers hold mu (either
// mode).
func (g *GIIS) snapshot() []*ldap.Entry {
	entries, _ := g.dit.Search(SuffixDN, ldap.ScopeSub, nil)
	out := make([]*ldap.Entry, 0, len(entries))
	for _, e := range entries {
		if e.First("objectclass") == "MdsStructure" {
			continue
		}
		out = append(out, e.Clone())
	}
	return out
}

// Compile-time checks: both MDS servers are aggregation sources.
var (
	_ Source = (*GRIS)(nil)
	_ Source = (*GIIS)(nil)
)
