// Package mds implements the Globus Toolkit Monitoring and Discovery
// Service (MDS 2.1): information providers, the resource-level GRIS with
// its TTL cache, and the aggregating GIIS with soft-state registration —
// all on the ldap directory engine.
package mds

import (
	"fmt"

	"repro/internal/ldap"
)

// SuffixDN is the directory suffix MDS publishes under.
var SuffixDN = ldap.MustParseDN("Mds-Vo-name=local, o=grid")

// Provider is an MDS information provider: a program the GRIS forks to
// produce directory entries about one aspect of a resource. ForkWeight
// scales the cost the testbed charges per invocation (1.0 = the default
// provider script).
type Provider struct {
	Name       string
	ForkWeight float64
	// Generate produces the provider's entries for the given host at
	// (simulated or wall) time now.
	Generate func(host string, now float64) []*ldap.Entry
}

// InvocationCount tracks how often a provider ran, for cache tests.
type InvocationCount struct{ N int }

// hostDN returns the host's DN under the MDS suffix.
func hostDN(host string) ldap.DN {
	return SuffixDN.Child("Mds-Host-hn", host)
}

// deviceEntry creates one provider output entry under the host.
func deviceEntry(host, class, device string, attrs map[string]string) *ldap.Entry {
	dn := hostDN(host).Child("Mds-Device-Group-name", device)
	e := ldap.NewEntry(dn)
	e.Set("objectclass", class)
	e.Set("Mds-Device-Group-name", device)
	for k, v := range attrs {
		e.Set(k, v)
	}
	return e
}

// fmtF renders a float attribute value.
func fmtF(f float64) string { return fmt.Sprintf("%.2f", f) }

// DefaultProviders returns the standard complement of ten information
// providers that a stock MDS 2.1 install runs (CPU, memory, filesystem,
// OS, network, and friends). The varying inputs keep successive
// invocations from producing byte-identical data, like real sensors.
func DefaultProviders() []*Provider {
	mk := func(name string, gen func(host string, now float64) []*ldap.Entry) *Provider {
		return &Provider{Name: name, ForkWeight: 1.0, Generate: gen}
	}
	return []*Provider{
		mk("cpu", func(host string, now float64) []*ldap.Entry {
			return []*ldap.Entry{deviceEntry(host, "MdsCpu", "cpu", map[string]string{
				"Mds-Cpu-Total-count":   "2",
				"Mds-Cpu-speedMHz":      "1133",
				"Mds-Cpu-Free-1minX100": fmtF(50 + 40*pseudo(now, host, 1)),
				"Mds-Cpu-Free-5minX100": fmtF(50 + 30*pseudo(now, host, 2)),
				"Mds-Cpu-vendor":        "Intel",
				"Mds-Cpu-model":         "Pentium III",
				"Mds-Cpu-Cache-l2kB":    "512",
			})}
		}),
		mk("memory", func(host string, now float64) []*ldap.Entry {
			return []*ldap.Entry{deviceEntry(host, "MdsMemoryRam", "memory", map[string]string{
				"Mds-Memory-Ram-Total-sizeMB": "512",
				"Mds-Memory-Ram-freeMB":       fmtF(100 + 300*pseudo(now, host, 3)),
				"Mds-Memory-Vm-Total-sizeMB":  "1024",
				"Mds-Memory-Vm-freeMB":        fmtF(500 + 400*pseudo(now, host, 4)),
			})}
		}),
		mk("filesystem", func(host string, now float64) []*ldap.Entry {
			var out []*ldap.Entry
			for _, fs := range []string{"root", "scratch"} {
				out = append(out, deviceEntry(host, "MdsFilesystem", "fs-"+fs, map[string]string{
					"Mds-Fs-Total-sizeMB": "40000",
					"Mds-Fs-freeMB":       fmtF(10000 + 20000*pseudo(now, host+fs, 5)),
					"Mds-Fs-mount":        "/" + fs,
				}))
			}
			return out
		}),
		mk("os", func(host string, now float64) []*ldap.Entry {
			return []*ldap.Entry{deviceEntry(host, "MdsOs", "os", map[string]string{
				"Mds-Os-name":    "Linux",
				"Mds-Os-release": "2.4.10",
			})}
		}),
		mk("net", func(host string, now float64) []*ldap.Entry {
			return []*ldap.Entry{deviceEntry(host, "MdsNet", "eth0", map[string]string{
				"Mds-Net-Total-count": "1",
				"Mds-Net-name":        "eth0",
				"Mds-Net-speedMbps":   "100",
			})}
		}),
		mk("host", func(host string, now float64) []*ldap.Entry {
			return []*ldap.Entry{deviceEntry(host, "MdsHost", "hostinfo", map[string]string{
				"Mds-Host-hn": host,
			})}
		}),
		mk("queue", func(host string, now float64) []*ldap.Entry {
			return []*ldap.Entry{deviceEntry(host, "MdsGramJobQueue", "jobqueue", map[string]string{
				"Mds-Gram-Job-Queue-maxcount": "64",
				"Mds-Gram-Job-Queue-jobcount": fmt.Sprintf("%d", int(10*pseudo(now, host, 6))),
			})}
		}),
		mk("software", func(host string, now float64) []*ldap.Entry {
			return []*ldap.Entry{deviceEntry(host, "MdsSoftwareDeployment", "globus", map[string]string{
				"Mds-Software-deployment": "globus-2.2",
			})}
		}),
		mk("loadavg", func(host string, now float64) []*ldap.Entry {
			return []*ldap.Entry{deviceEntry(host, "MdsHostLoad", "load", map[string]string{
				"Mds-Load-1min":  fmtF(2 * pseudo(now, host, 7)),
				"Mds-Load-5min":  fmtF(2 * pseudo(now, host, 8)),
				"Mds-Load-15min": fmtF(2 * pseudo(now, host, 9)),
			})}
		}),
		mk("users", func(host string, now float64) []*ldap.Entry {
			return []*ldap.Entry{deviceEntry(host, "MdsUsers", "users", map[string]string{
				"Mds-Users-count": fmt.Sprintf("%d", 1+int(5*pseudo(now, host, 10))),
			})}
		}),
	}
}

// MemoryProviderCopies returns n copies of the default memory information
// provider, the way the paper expanded a GRIS to up to 90 information
// providers for Experiment Set 3.
func MemoryProviderCopies(n int) []*Provider {
	out := make([]*Provider, 0, n)
	for i := 0; i < n; i++ {
		i := i
		out = append(out, &Provider{
			Name:       fmt.Sprintf("memory-%02d", i),
			ForkWeight: 1.0,
			Generate: func(host string, now float64) []*ldap.Entry {
				return []*ldap.Entry{deviceEntry(host, "MdsMemoryRam", fmt.Sprintf("memory-%02d", i), map[string]string{
					"Mds-Memory-Ram-Total-sizeMB": "512",
					"Mds-Memory-Ram-freeMB":       fmtF(100 + 300*pseudo(now, host, uint64(20+i))),
					"Mds-Memory-Vm-Total-sizeMB":  "1024",
					"Mds-Memory-Vm-freeMB":        fmtF(500 + 400*pseudo(now, host, uint64(120+i))),
				})}
			},
		})
	}
	return out
}

// pseudo produces a deterministic value in [0,1) varying with time, host
// and stream — sensor noise without global RNG state.
func pseudo(now float64, host string, stream uint64) float64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(host); i++ {
		h = (h ^ uint64(host[i])) * 1099511628211
	}
	h ^= stream * 0x9e3779b97f4a7c15
	h ^= uint64(int64(now)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}
