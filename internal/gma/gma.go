// Package gma defines the Grid Monitoring Architecture of the Global Grid
// Forum: Producers that publish monitoring data, Consumers that request
// it, and a Registry through which Consumers locate Producers (the paper's
// Figure 2). GMA deliberately specifies neither protocol nor data model;
// the rgma package supplies both with a relational model, exactly as
// R-GMA does.
package gma

// Advertisement is what a Producer registers: where it can be contacted
// and what data it offers. In R-GMA the offer is a table name plus a fixed
// predicate over that table's columns.
type Advertisement struct {
	// ProducerID uniquely identifies the producer instance.
	ProducerID string
	// Address locates the component serving the producer's data (in
	// R-GMA, a ProducerServlet).
	Address string
	// TableName is the relation the producer publishes.
	TableName string
	// Predicate is a SQL WHERE fragment fixing the producer's slice of
	// the table, e.g. "host = 'lucky3'". Empty means the whole table.
	Predicate string
}

// Registry is the GMA directory service: producers register themselves;
// consumers query the registry to locate producers for the data they
// want, then contact producers directly.
type Registry interface {
	// RegisterProducer records (or renews) an advertisement with the
	// given soft-state lifetime in seconds.
	RegisterProducer(ad Advertisement, now, ttl float64) error
	// UnregisterProducer removes a producer, reporting whether it was
	// registered.
	UnregisterProducer(producerID string, now float64) bool
	// LookupProducers returns the advertisements offering the named
	// table, in registration order.
	LookupProducers(table string, now float64) ([]Advertisement, error)
	// Tables lists the distinct table names currently offered.
	Tables(now float64) []string
}

// Producer is the minimal producing component: it can describe itself for
// registration.
type Producer interface {
	Advertisement() Advertisement
}

// Consumer is a marker for consuming components; in GMA the consumer's
// only architectural obligation is to locate producers via the Registry
// and contact them directly, which concrete implementations do with their
// own query APIs.
type Consumer interface {
	ConsumerID() string
}
