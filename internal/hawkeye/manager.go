package hawkeye

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/classad"
)

// Trigger pairs a Trigger ClassAd with the job to run on a match — the
// paper's example is a trigger for CpuLoad > 50 whose job kills Netscape
// on the matched machine.
type Trigger struct {
	Name string
	Ad   *classad.Ad
	// Fire is invoked for each Startd ClassAd the trigger matches. The
	// string is the matched machine's Name attribute.
	Fire func(machine string, ad *classad.Ad)

	// compiled is the trigger ad prepared for repeated matchmaking,
	// built by SubmitTrigger so every subsequent Update matches without
	// re-resolving the Requirements expression. The Manager's own lock
	// protects it (out of lockcheck's sibling-mutex grammar).
	compiled *classad.CompiledMatch
}

// matches runs the trigger's matchmaking against a Startd ClassAd,
// compiling on first use for triggers constructed outside SubmitTrigger.
func (tr *Trigger) matches(ad *classad.Ad) bool {
	if tr.compiled == nil {
		tr.compiled = classad.CompileMatch(tr.Ad)
	}
	return tr.compiled.Matches(ad)
}

// Manager is the head computer of a Hawkeye Pool: it collects Startd
// ClassAds from registered Agents into an indexed resident database,
// answers status queries about pool members, and performs ClassAd
// Matchmaking between submitted Trigger ClassAds and Startd ClassAds.
// It is safe for concurrent use: the live server advertises from a
// background goroutine while serving queries, and queries themselves
// run in parallel — reads take a shared lock when no ad can have
// expired (AdLifetime zero, the facade's configuration), upgrading to
// the exclusive lock only when expiry must mutate the pool. Updates
// swap whole-ad pointers, so a result set handed out under the read
// lock stays a consistent snapshot. Trigger Fire callbacks run after
// the Manager's lock is released, so they may call back into it (e.g.
// RemoveTrigger for one-shot triggers).
type Manager struct {
	Name string
	// AdLifetime expires pool members that stop advertising. Zero means
	// ads never expire.
	AdLifetime float64

	mu       sync.RWMutex
	ads      map[string]*machineAd // indexed by lowercase machine name; guarded by mu
	order    []string              // ad insertion order; guarded by mu
	triggers []*Trigger            // guarded by mu
}

type machineAd struct {
	name    string
	ad      *classad.Ad
	expires float64
}

// NewManager creates an empty Manager.
func NewManager(name string, adLifetime float64) *Manager {
	return &Manager{Name: name, AdLifetime: adLifetime, ads: make(map[string]*machineAd)}
}

// lockForRead takes the lock a read at time now needs: the shared lock
// when no ad can expire (AdLifetime zero — reads mutate nothing and run
// in parallel), otherwise the exclusive lock with expiry applied first.
// It returns the matching unlock.
//
// locks mu (for the calling function, until the returned unlock runs).
func (m *Manager) lockForRead(now float64) (unlock func()) {
	if m.AdLifetime <= 0 {
		m.mu.RLock()
		return m.mu.RUnlock
	}
	m.mu.Lock()
	m.expire(now)
	return m.mu.Unlock
}

// NumMachines reports the number of live pool members at time now.
func (m *Manager) NumMachines(now float64) int {
	defer m.lockForRead(now)()
	return len(m.ads)
}

// firing is one matched trigger whose Fire callback is pending; matches
// are collected under the lock and fired after it is released, so
// callbacks may call back into the Manager.
type firing struct {
	tr      *Trigger
	machine string
	ad      *classad.Ad
}

func fire(firings []firing) {
	for _, f := range firings {
		if f.tr.Fire != nil {
			f.tr.Fire(f.machine, f.ad)
		}
	}
}

// Update ingests a Startd ClassAd (the hawkeye_advertise path). The ad
// must carry a Name attribute identifying the machine. Matching triggers
// fire immediately. It returns the number of triggers fired.
func (m *Manager) Update(now float64, ad *classad.Ad) (int, error) {
	m.mu.Lock()
	nameV := ad.Eval("Name")
	name, ok := nameV.StringVal()
	if !ok || name == "" {
		m.mu.Unlock()
		return 0, fmt.Errorf("hawkeye: advertised ad has no Name")
	}
	key := lower(name)
	rec, exists := m.ads[key]
	if !exists {
		rec = &machineAd{name: name}
		m.ads[key] = rec
		m.order = append(m.order, key)
	}
	rec.ad = ad
	rec.expires = now + m.AdLifetime
	var firings []firing
	for _, tr := range m.triggers {
		if tr.matches(ad) {
			firings = append(firings, firing{tr: tr, machine: name, ad: ad})
		}
	}
	m.mu.Unlock()
	fire(firings)
	return len(firings), nil
}

// expire drops pool members whose ads lapsed. Callers hold mu.
func (m *Manager) expire(now float64) {
	if m.AdLifetime <= 0 {
		return
	}
	kept := m.order[:0]
	for _, key := range m.order {
		if now >= m.ads[key].expires {
			delete(m.ads, key)
			continue
		}
		kept = append(kept, key)
	}
	m.order = kept
}

// QueryByName answers a pool-member status query through the name index —
// no scan, the "indexed resident database" advantage the paper credits for
// the Manager's efficiency.
func (m *Manager) QueryByName(now float64, name string) (*classad.Ad, QueryStats, bool) {
	defer m.lockForRead(now)()
	rec, ok := m.ads[lower(name)]
	if !ok {
		return nil, QueryStats{}, false
	}
	st := QueryStats{AdsReturned: 1, ResponseBytes: rec.ad.SizeBytes(), IndexHits: 1}
	return rec.ad, st, true
}

// Query scans every Startd ClassAd and returns those matching the
// constraint expression. A nil constraint returns everything. The paper's
// worst case — a constraint met by no machine — still scans the full
// pool; the constraint is compiled once per query so the scan does not
// re-resolve its attribute references per machine.
func (m *Manager) Query(now float64, constraint classad.Expr) ([]*classad.Ad, QueryStats) {
	defer m.lockForRead(now)()
	st := QueryStats{ScanFallbacks: 1}
	var out []*classad.Ad
	var cc *classad.CompiledConstraint
	if constraint != nil {
		cc = classad.CompileConstraint(constraint)
	}
	for _, key := range m.order {
		rec := m.ads[key]
		st.AdsScanned++
		if cc != nil && !cc.SatisfiedBy(rec.ad) {
			continue
		}
		out = append(out, rec.ad)
		st.AdsReturned++
		st.ResponseBytes += rec.ad.SizeBytes()
	}
	return out, st
}

// SubmitTrigger installs a Trigger ClassAd. Matchmaking runs against the
// current pool immediately (returning the fire count) and then on every
// subsequent Update.
func (m *Manager) SubmitTrigger(now float64, tr *Trigger) int {
	m.mu.Lock()
	m.expire(now)
	tr.compiled = classad.CompileMatch(tr.Ad)
	m.triggers = append(m.triggers, tr)
	var firings []firing
	for _, key := range m.order {
		rec := m.ads[key]
		if tr.matches(rec.ad) {
			firings = append(firings, firing{tr: tr, machine: rec.name, ad: rec.ad})
		}
	}
	m.mu.Unlock()
	fire(firings)
	return len(firings)
}

// NumTriggers reports the number of installed triggers.
func (m *Manager) NumTriggers() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.triggers)
}

// RemoveTrigger uninstalls the named trigger, reporting whether it existed.
func (m *Manager) RemoveTrigger(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, tr := range m.triggers {
		if tr.Name == name {
			m.triggers = append(m.triggers[:i], m.triggers[i+1:]...)
			return true
		}
	}
	return false
}

// Machines lists live pool-member names in sorted order.
func (m *Manager) Machines(now float64) []string {
	defer m.lockForRead(now)()
	out := make([]string, 0, len(m.order))
	for _, key := range m.order {
		out = append(out, m.ads[key].name)
	}
	sort.Strings(out)
	return out
}

// AgentAddress resolves a pool member's contact address. Clients querying
// an Agent directly must first ask the Manager for the Agent's address,
// the two-step lookup the paper describes.
func (m *Manager) AgentAddress(now float64, name string) (string, bool) {
	defer m.lockForRead(now)()
	rec, ok := m.ads[lower(name)]
	if !ok {
		return "", false
	}
	return rec.name + ":hawkeye-agent", true
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
