package hawkeye

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/classad"
)

func TestDefaultModulesCount(t *testing.T) {
	ms := DefaultModules()
	if len(ms) != 11 {
		t.Fatalf("default modules = %d, want 11 (standard Hawkeye install)", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m.Name] {
			t.Fatalf("duplicate module %q", m.Name)
		}
		seen[m.Name] = true
		if ad := m.Collect("lucky4", 0); ad.Len() == 0 {
			t.Fatalf("module %q produced empty ad", m.Name)
		}
	}
}

func TestVmstatModuleCopiesDistinct(t *testing.T) {
	ms := VmstatModuleCopies(5)
	a := ms[0].Collect("h", 0)
	b := ms[1].Collect("h", 0)
	for _, name := range a.Names() {
		if _, ok := b.Lookup(name); ok {
			t.Fatalf("module copies share attribute %q; Startd ad would not grow", name)
		}
	}
}

func newDefaultAgent(t *testing.T) *Agent {
	t.Helper()
	a := NewAgent("lucky4", 30)
	if err := a.AddModules(DefaultModules()); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAgentStartdAdIntegratesModules(t *testing.T) {
	a := newDefaultAgent(t)
	ad, st := a.StartdAd(0)
	if st.ModulesCollected != 11 {
		t.Fatalf("collected %d modules, want 11", st.ModulesCollected)
	}
	if v := ad.Eval("Name"); !v.SameAs(classad.Str("lucky4")) {
		t.Fatalf("Name = %v", v)
	}
	if v := ad.Eval("OpSys"); !v.SameAs(classad.Str("LINUX")) {
		t.Fatalf("OpSys = %v (module ads not merged)", v)
	}
	if ad.Eval("CpuLoad").IsUndefined() {
		t.Fatal("CpuLoad missing from Startd ad")
	}
}

func TestAgentModuleLimit(t *testing.T) {
	a := NewAgent("lucky4", 30)
	blank := func(string, float64) *classad.Ad { return classad.NewAd() }
	for i := 0; i < MaxModules; i++ {
		if err := a.AddModule(&Module{Name: fmt.Sprintf("m%d", i), Collect: blank}); err != nil {
			t.Fatalf("module %d rejected: %v", i, err)
		}
	}
	err := a.AddModule(&Module{Name: "m99", Collect: blank})
	if err == nil {
		t.Fatal("99th module accepted; the Startd should crash")
	}
	if _, ok := err.(ErrStartdCrash); !ok {
		t.Fatalf("error type %T, want ErrStartdCrash", err)
	}
}

func TestAgentQueryRecollectsEveryTime(t *testing.T) {
	// The Agent has no resident database: each query re-runs the modules.
	a := newDefaultAgent(t)
	for i := 0; i < 3; i++ {
		_, st := a.Query(float64(i), nil)
		if st.ModulesCollected != 11 {
			t.Fatalf("query %d collected %d modules, want 11", i, st.ModulesCollected)
		}
	}
}

func TestAgentQueryConstraint(t *testing.T) {
	a := newDefaultAgent(t)
	ad, st := a.Query(0, classad.MustParseExpr("TARGET.CpuLoad >= 0"))
	if ad == nil || st.AdsReturned != 1 {
		t.Fatal("satisfiable constraint returned nothing")
	}
	ad, st = a.Query(0, classad.MustParseExpr("TARGET.CpuLoad > 100"))
	if ad != nil || st.AdsReturned != 0 {
		t.Fatal("unsatisfiable constraint returned an ad")
	}
	if st.ModulesCollected != 11 {
		t.Fatal("non-matching query still pays collection cost")
	}
}

func TestAgentQueryModule(t *testing.T) {
	a := newDefaultAgent(t)
	ad, st, err := a.QueryModule(0, "disk")
	if err != nil {
		t.Fatal(err)
	}
	if ad.Eval("FreeDiskMB").IsUndefined() {
		t.Fatal("disk module ad missing FreeDiskMB")
	}
	if st.ModulesCollected != 1 {
		t.Fatalf("module query collected %d, want 1", st.ModulesCollected)
	}
	if _, _, err := a.QueryModule(0, "nope"); err == nil {
		t.Fatal("unknown module query succeeded")
	}
}

func newPool(t *testing.T, nAgents int) (*Manager, []*Agent) {
	t.Helper()
	m := NewManager("lucky3", 90)
	var agents []*Agent
	for i := 0; i < nAgents; i++ {
		a := NewAgent(fmt.Sprintf("lucky%d", i+4), 30)
		if err := a.AddModules(DefaultModules()); err != nil {
			t.Fatal(err)
		}
		ad, _ := a.StartdAd(0)
		if _, err := m.Update(0, ad); err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	return m, agents
}

func TestManagerIndexedLookup(t *testing.T) {
	m, _ := newPool(t, 3)
	ad, st, ok := m.QueryByName(1, "LUCKY5") // case-insensitive
	if !ok {
		t.Fatal("indexed lookup missed")
	}
	if v := ad.Eval("Name"); !v.SameAs(classad.Str("lucky5")) {
		t.Fatalf("Name = %v", v)
	}
	if st.AdsScanned != 0 {
		t.Fatalf("indexed lookup scanned %d ads, want 0", st.AdsScanned)
	}
	if _, _, ok := m.QueryByName(1, "nope"); ok {
		t.Fatal("lookup of unknown machine succeeded")
	}
}

func TestManagerScanQuery(t *testing.T) {
	m, _ := newPool(t, 5)
	// Worst case from the paper: a constraint no machine meets scans all.
	ads, st := m.Query(1, classad.MustParseExpr("TARGET.CpuLoad > 1000"))
	if len(ads) != 0 {
		t.Fatalf("impossible constraint matched %d", len(ads))
	}
	if st.AdsScanned != 5 {
		t.Fatalf("scanned %d, want 5", st.AdsScanned)
	}
	// A satisfiable constraint returns the matching subset.
	ads, _ = m.Query(1, classad.MustParseExpr("TARGET.OpSys == \"LINUX\""))
	if len(ads) != 5 {
		t.Fatalf("matched %d, want 5", len(ads))
	}
}

func TestManagerAdExpiry(t *testing.T) {
	m, agents := newPool(t, 2)
	// Only lucky4 keeps advertising.
	ad, _ := agents[0].StartdAd(60)
	if _, err := m.Update(60, ad); err != nil {
		t.Fatal(err)
	}
	if n := m.NumMachines(120); n != 1 {
		t.Fatalf("machines after expiry = %d, want 1", n)
	}
	if names := m.Machines(120); len(names) != 1 || names[0] != "lucky4" {
		t.Fatalf("survivors = %v", names)
	}
}

func TestManagerTriggerFiresOnUpdate(t *testing.T) {
	m := NewManager("mgr", 0)
	var fired []string
	tr := &Trigger{
		Name: "high-cpu",
		Ad:   classad.NewAd(),
		Fire: func(machine string, ad *classad.Ad) { fired = append(fired, machine) },
	}
	tr.Ad.Set(classad.AttrRequirements, classad.MustParseExpr("TARGET.CpuLoad > 50"))
	if n := m.SubmitTrigger(0, tr); n != 0 {
		t.Fatalf("trigger fired %d times on empty pool", n)
	}
	busy := classad.NewAd()
	busy.SetString("Name", "lucky6")
	busy.SetReal("CpuLoad", 80)
	if _, err := m.Update(1, busy); err != nil {
		t.Fatal(err)
	}
	idle := classad.NewAd()
	idle.SetString("Name", "lucky7")
	idle.SetReal("CpuLoad", 5)
	if _, err := m.Update(1, idle); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "lucky6" {
		t.Fatalf("fired = %v, want [lucky6]", fired)
	}
}

func TestManagerTriggerOnSubmitMatchesExisting(t *testing.T) {
	m, _ := newPool(t, 4)
	tr := &Trigger{Name: "all-linux", Ad: classad.NewAd()}
	tr.Ad.Set(classad.AttrRequirements, classad.MustParseExpr("TARGET.OpSys == \"LINUX\""))
	if n := m.SubmitTrigger(1, tr); n != 4 {
		t.Fatalf("trigger fired %d, want 4", n)
	}
	if !m.RemoveTrigger("all-linux") {
		t.Fatal("remove failed")
	}
	if m.RemoveTrigger("all-linux") {
		t.Fatal("double remove succeeded")
	}
}

func TestManagerUpdateRequiresName(t *testing.T) {
	m := NewManager("mgr", 0)
	if _, err := m.Update(0, classad.NewAd()); err == nil {
		t.Fatal("nameless ad accepted")
	}
}

func TestManagerAgentAddress(t *testing.T) {
	m, _ := newPool(t, 1)
	addr, ok := m.AgentAddress(1, "lucky4")
	if !ok || addr == "" {
		t.Fatal("agent address lookup failed")
	}
	if _, ok := m.AgentAddress(1, "nowhere"); ok {
		t.Fatal("unknown agent resolved")
	}
}

func TestManagerUpdateReplacesAd(t *testing.T) {
	m := NewManager("mgr", 0)
	ad1 := classad.NewAd()
	ad1.SetString("Name", "host1")
	ad1.SetReal("CpuLoad", 10)
	ad2 := classad.NewAd()
	ad2.SetString("Name", "host1")
	ad2.SetReal("CpuLoad", 90)
	if _, err := m.Update(0, ad1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(1, ad2); err != nil {
		t.Fatal(err)
	}
	if n := m.NumMachines(2); n != 1 {
		t.Fatalf("machines = %d, want 1", n)
	}
	got, _, _ := m.QueryByName(2, "host1")
	if v := got.Eval("CpuLoad"); !v.SameAs(classad.Real(90)) {
		t.Fatalf("CpuLoad = %v, want 90", v)
	}
}

func TestStartdAdGrowsWithModules(t *testing.T) {
	small := NewAgent("h", 30)
	if err := small.AddModules(DefaultModules()); err != nil {
		t.Fatal(err)
	}
	big := NewAgent("h", 30)
	if err := big.AddModules(DefaultModules()); err != nil {
		t.Fatal(err)
	}
	if err := big.AddModules(VmstatModuleCopies(79)); err != nil {
		t.Fatal(err)
	}
	sAd, _ := small.StartdAd(0)
	bAd, _ := big.StartdAd(0)
	if bAd.SizeBytes() <= sAd.SizeBytes() {
		t.Fatalf("90-module ad (%dB) not larger than 11-module ad (%dB)",
			bAd.SizeBytes(), sAd.SizeBytes())
	}
}

// TestTriggerFireReentrant: Fire callbacks run outside the Manager's
// lock, so a one-shot trigger may remove itself (and inspect the pool)
// from inside its own callback without deadlocking.
func TestTriggerFireReentrant(t *testing.T) {
	mgr := NewManager("m", 0)
	a := NewAgent("h1", 30)
	if err := a.AddModules(DefaultModules()); err != nil {
		t.Fatal(err)
	}
	ad, _ := a.StartdAd(0)
	if _, err := mgr.Update(0, ad); err != nil {
		t.Fatal(err)
	}
	fired := 0
	tr := &Trigger{Name: "oneshot", Ad: classad.NewAd()}
	tr.Ad.Set(classad.AttrRequirements, classad.MustParseExpr("TARGET.CpuLoad >= 0"))
	tr.Fire = func(machine string, _ *classad.Ad) {
		fired++
		if _, _, ok := mgr.QueryByName(0, machine); !ok { // reentrant read
			t.Errorf("machine %q not found from Fire", machine)
		}
		mgr.RemoveTrigger("oneshot") // reentrant write
	}
	done := make(chan struct{})
	go func() {
		mgr.SubmitTrigger(0, tr)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SubmitTrigger deadlocked on reentrant Fire callback")
	}
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// The trigger removed itself: a fresh advertise must not re-fire.
	if _, err := mgr.Update(30, ad); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("one-shot trigger fired again: %d", fired)
	}
}
