package hawkeye

import (
	"fmt"

	"repro/internal/classad"
)

// MaxModules is the most Modules an Agent can register: the paper found
// that the 99th Module crashed the Startd.
const MaxModules = 98

// ErrStartdCrash reports that the Agent exceeded a hard Startd limit.
type ErrStartdCrash struct{ Msg string }

func (e ErrStartdCrash) Error() string { return "hawkeye: startd crash: " + e.Msg }

// QueryStats counts the work an Agent or Manager performed for one
// request; the testbed's calibration converts counts into CPU seconds.
type QueryStats struct {
	// ModulesCollected counts module executions (the Agent re-collects on
	// every query — it has no resident database).
	ModulesCollected int
	// ModuleExecWeight sums executed modules' weights.
	ModuleExecWeight float64
	// AdsScanned counts ClassAds examined by a Manager scan.
	AdsScanned int
	// AdsReturned counts ClassAds in the result.
	AdsReturned int
	// ResponseBytes is the unparsed size of the result.
	ResponseBytes int
	// IndexHits counts ads served through the Manager's name index.
	IndexHits int
	// ScanFallbacks counts queries that scanned the full pool.
	ScanFallbacks int
}

// Add accumulates other into s.
func (s *QueryStats) Add(other QueryStats) {
	s.ModulesCollected += other.ModulesCollected
	s.ModuleExecWeight += other.ModuleExecWeight
	s.AdsScanned += other.AdsScanned
	s.AdsReturned += other.AdsReturned
	s.ResponseBytes += other.ResponseBytes
	s.IndexHits += other.IndexHits
	s.ScanFallbacks += other.ScanFallbacks
}

// Agent is a Hawkeye Monitoring Agent: it runs on a pool member, collects
// ClassAds from its Modules, integrates them into a single Startd
// ClassAd, and sends that ad to its Manager at fixed intervals. Direct
// queries re-collect the modules — the Agent holds no indexed resident
// database, the property the paper uses to explain its query costs.
type Agent struct {
	Host string
	// AdvertiseInterval is the Startd ClassAd push period (30 s in the
	// paper's experiments).
	AdvertiseInterval float64

	modules []*Module
}

// NewAgent creates an Agent with no modules.
func NewAgent(host string, advertiseInterval float64) *Agent {
	return &Agent{Host: host, AdvertiseInterval: advertiseInterval}
}

// AddModule registers a module, crashing (returning ErrStartdCrash) past
// MaxModules exactly as the paper observed.
func (a *Agent) AddModule(m *Module) error {
	if len(a.modules) >= MaxModules {
		return ErrStartdCrash{Msg: fmt.Sprintf("module %q is number %d, limit %d", m.Name, len(a.modules)+1, MaxModules)}
	}
	a.modules = append(a.modules, m)
	return nil
}

// AddModules registers several modules, stopping at the first failure.
func (a *Agent) AddModules(ms []*Module) error {
	for _, m := range ms {
		if err := a.AddModule(m); err != nil {
			return err
		}
	}
	return nil
}

// NumModules reports the number of registered modules.
func (a *Agent) NumModules() int { return len(a.modules) }

// StartdAd collects every module and integrates the results into a single
// Startd ClassAd carrying the host identity.
func (a *Agent) StartdAd(now float64) (*classad.Ad, QueryStats) {
	ad := classad.NewAd()
	ad.SetString("Name", a.Host)
	ad.SetString("MyType", "Machine")
	var st QueryStats
	for _, m := range a.modules {
		ad.Merge(m.Collect(a.Host, now))
		st.ModulesCollected++
		st.ModuleExecWeight += m.ExecWeight
	}
	return ad, st
}

// Query answers a direct query about this Agent: the constraint expression
// is evaluated against a freshly collected Startd ClassAd, which is
// returned when it matches. A nil constraint always matches.
func (a *Agent) Query(now float64, constraint classad.Expr) (*classad.Ad, QueryStats) {
	ad, st := a.StartdAd(now)
	match := true
	if constraint != nil {
		v := classad.EvalExprAgainst(constraint, classad.NewAd(), ad)
		b, ok := v.BoolVal()
		match = ok && b
	}
	st.AdsScanned = 1
	if !match {
		return nil, st
	}
	st.AdsReturned = 1
	st.ResponseBytes = ad.SizeBytes()
	return ad, st
}

// QueryModule answers a query about one named module's attributes only
// (the paper: "An Agent can also directly answer queries about a
// particular Module").
func (a *Agent) QueryModule(now float64, moduleName string) (*classad.Ad, QueryStats, error) {
	for _, m := range a.modules {
		if m.Name == moduleName {
			ad := m.Collect(a.Host, now)
			st := QueryStats{
				ModulesCollected: 1,
				ModuleExecWeight: m.ExecWeight,
				AdsReturned:      1,
				ResponseBytes:    ad.SizeBytes(),
			}
			return ad, st, nil
		}
	}
	return nil, QueryStats{}, fmt.Errorf("hawkeye: agent %s has no module %q", a.Host, moduleName)
}
