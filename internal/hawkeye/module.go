// Package hawkeye implements Condor's Hawkeye monitoring tool: Modules
// (sensors advertising ClassAds), Agents (which fold Module ClassAds into
// a single Startd ClassAd and push it to a Manager at fixed intervals),
// and the Manager (an indexed resident ClassAd database answering queries
// and matching Trigger ClassAds). It is built on the classad package.
package hawkeye

import (
	"fmt"

	"repro/internal/classad"
)

// Module is a Hawkeye sensor: it advertises resource information as a
// ClassAd. ExecWeight scales the testbed's per-collection cost (1.0 = the
// default "vmstat"-class module).
type Module struct {
	Name       string
	ExecWeight float64
	// Collect produces the module's ClassAd for host at time now.
	Collect func(host string, now float64) *classad.Ad
}

// numAttr formats a float sensor reading.
func numAttr(ad *classad.Ad, name string, v float64) { ad.SetReal(name, v) }

// DefaultModules returns the eleven modules of a standard Hawkeye install
// (the paper: "Hawkeye uses 11 Modules in a standard install").
func DefaultModules() []*Module {
	mk := func(name string, collect func(host string, now float64) *classad.Ad) *Module {
		return &Module{Name: name, ExecWeight: 1.0, Collect: collect}
	}
	simple := func(name string, fill func(ad *classad.Ad, host string, now float64)) *Module {
		return mk(name, func(host string, now float64) *classad.Ad {
			ad := classad.NewAd()
			fill(ad, host, now)
			return ad
		})
	}
	return []*Module{
		simple("vmstat", func(ad *classad.Ad, host string, now float64) {
			numAttr(ad, "CpuLoad", 100*noise(now, host, 1))
			numAttr(ad, "CpuIdle", 100*(1-noise(now, host, 1)))
			numAttr(ad, "SwapUsedMB", 200*noise(now, host, 2))
		}),
		simple("memory", func(ad *classad.Ad, host string, now float64) {
			numAttr(ad, "MemTotalMB", 512)
			numAttr(ad, "MemFreeMB", 100+300*noise(now, host, 3))
		}),
		simple("disk", func(ad *classad.Ad, host string, now float64) {
			numAttr(ad, "FreeDiskMB", 10000+20000*noise(now, host, 4))
			numAttr(ad, "TotalDiskMB", 40000)
		}),
		simple("network", func(ad *classad.Ad, host string, now float64) {
			numAttr(ad, "NetRxKBs", 1000*noise(now, host, 5))
			numAttr(ad, "NetTxKBs", 1000*noise(now, host, 6))
		}),
		simple("load", func(ad *classad.Ad, host string, now float64) {
			numAttr(ad, "LoadAvg1", 2*noise(now, host, 7))
			numAttr(ad, "LoadAvg5", 2*noise(now, host, 8))
			numAttr(ad, "LoadAvg15", 2*noise(now, host, 9))
		}),
		simple("uptime", func(ad *classad.Ad, host string, now float64) {
			numAttr(ad, "UptimeSeconds", now+86400)
		}),
		simple("users", func(ad *classad.Ad, host string, now float64) {
			ad.SetInt("LoggedInUsers", int64(1+5*noise(now, host, 10)))
		}),
		simple("processes", func(ad *classad.Ad, host string, now float64) {
			ad.SetInt("ProcessCount", int64(40+100*noise(now, host, 11)))
			ad.SetInt("ZombieCount", int64(3*noise(now, host, 12)))
		}),
		simple("os", func(ad *classad.Ad, host string, now float64) {
			ad.SetString("OpSys", "LINUX")
			ad.SetString("KernelVersion", "2.4.10")
		}),
		simple("condor", func(ad *classad.Ad, host string, now float64) {
			ad.SetString("CondorVersion", "6.4.7")
			ad.SetBool("CondorRunning", true)
		}),
		simple("tmpfiles", func(ad *classad.Ad, host string, now float64) {
			numAttr(ad, "TmpUsedMB", 500*noise(now, host, 13))
		}),
	}
}

// VmstatModuleCopies returns n additional instances of the vmstat module,
// the way the paper scaled an Agent to 90 Modules in Experiment Set 3.
// Each instance publishes under distinct attribute names so the Startd
// ClassAd grows with the module count.
func VmstatModuleCopies(n int) []*Module {
	out := make([]*Module, 0, n)
	for i := 0; i < n; i++ {
		i := i
		out = append(out, &Module{
			Name:       fmt.Sprintf("vmstat-%02d", i),
			ExecWeight: 1.0,
			Collect: func(host string, now float64) *classad.Ad {
				ad := classad.NewAd()
				numAttr(ad, fmt.Sprintf("CpuLoad_%02d", i), 100*noise(now, host, uint64(100+i)))
				numAttr(ad, fmt.Sprintf("SwapUsedMB_%02d", i), 200*noise(now, host, uint64(200+i)))
				return ad
			},
		})
	}
	return out
}

// noise is a deterministic stand-in for sensor variation in [0,1).
func noise(now float64, host string, stream uint64) float64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(host); i++ {
		h = (h ^ uint64(host[i])) * 1099511628211
	}
	h ^= stream * 0x9e3779b97f4a7c15
	h ^= uint64(int64(now)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}
