package transport

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{Op: "mds.query", Params: map[string]string{"filter": "(a=b)"}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Op != in.Op || out.Params["filter"] != "(a=b)" {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	big := Response{OK: true, Payload: strings.Repeat("x", MaxFrame)}
	if err := WriteFrame(&buf, big); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// A forged oversized header must be rejected on read.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	var out Response
	if err := ReadFrame(&buf, &out); err == nil {
		t.Fatal("oversized header accepted")
	}
}

func TestReadFrameShortInput(t *testing.T) {
	var out Request
	if err := ReadFrame(strings.NewReader("\x00\x00\x00\x10abc"), &out); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func newEchoServer(t *testing.T) (string, *Server) {
	t.Helper()
	srv := NewServer()
	srv.Handle("echo", func(req Request) Response {
		return Response{OK: true, Payload: req.Params["msg"]}
	})
	srv.Handle("fail", func(Request) Response {
		return Response{Error: "deliberate failure"}
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return addr, srv
}

func TestClientServerRoundTrip(t *testing.T) {
	addr, _ := newEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Call("echo", map[string]string{"msg": "hello grid"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello grid" {
		t.Fatalf("payload = %q", got)
	}
}

func TestServerErrorPropagates(t *testing.T) {
	addr, _ := newEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("fail", nil); err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Fatalf("error = %v", err)
	}
}

func TestUnknownOp(t *testing.T) {
	addr, _ := newEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("nosuch.op", nil); err == nil {
		t.Fatal("unknown op succeeded")
	}
}

func TestMultipleRequestsPerConnection(t *testing.T) {
	addr, _ := newEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 20; i++ {
		msg := fmt.Sprintf("m%d", i)
		got, err := c.Call("echo", map[string]string{"msg": msg})
		if err != nil {
			t.Fatal(err)
		}
		if got != msg {
			t.Fatalf("call %d = %q", i, got)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, _ := newEchoServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for k := 0; k < 10; k++ {
				want := fmt.Sprintf("c%d-%d", i, k)
				got, err := c.Call("echo", map[string]string{"msg": want})
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					errs <- fmt.Errorf("got %q want %q", got, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer()
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // must not panic or deadlock
}

func TestOpsListing(t *testing.T) {
	srv := NewServer()
	srv.Handle("a", func(Request) Response { return Response{OK: true} })
	srv.Handle("b", func(Request) Response { return Response{OK: true} })
	// The built-in ops.list introspection op is always present, and the
	// listing is sorted.
	got := srv.Ops()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "ops.list" {
		t.Fatalf("ops = %v", got)
	}
}
