package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// v3AddServer serves "math.add" with a binary codec (two uvarints in,
// their sum out) next to the JSON registrations the older generations
// use, so one server answers every protocol in these tests.
func v3AddServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer()
	srv.Concurrent = true
	Handle(srv, "math.add", func(_ context.Context, req addReq) (addResp, error) {
		return addResp{Sum: req.A + req.B}, nil
	})
	srv.HandleV3("math.add", func(_ context.Context, body, out []byte) ([]byte, *Error) {
		d := NewDec(body)
		a := d.Uvarint()
		b := d.Uvarint()
		if err := d.Err(); err != nil {
			return nil, AsError(err)
		}
		return AppendUvarint(out, a+b), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, addr
}

func dialV3(t *testing.T, addr string) *MuxClient {
	t.Helper()
	m, err := DialV3(context.Background(), addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func addV3(t *testing.T, m *MuxClient, a, b uint64) (uint64, error) {
	t.Helper()
	var sum uint64
	err := m.CallV3(context.Background(), "math.add",
		func(buf []byte) []byte {
			buf = AppendUvarint(buf, a)
			return AppendUvarint(buf, b)
		},
		func(body []byte) error {
			d := NewDec(body)
			sum = d.Uvarint()
			return d.Err()
		})
	return sum, err
}

// TestV3BinaryRoundTrip: a binary-bodied call reaches the binary
// handler and the answer decodes from the response frame.
func TestV3BinaryRoundTrip(t *testing.T) {
	_, addr := v3AddServer(t)
	m := dialV3(t, addr)
	sum, err := addV3(t, m, 19, 23)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("sum = %d", sum)
	}
}

// TestV3PipelinedOutOfOrder: with a slow call in flight, a fast call on
// the same connection completes first — responses are written in
// completion order, not arrival order.
func TestV3PipelinedOutOfOrder(t *testing.T) {
	srv := NewServer()
	srv.Concurrent = true
	release := make(chan struct{})
	srv.HandleV3("slow", func(_ context.Context, _, out []byte) ([]byte, *Error) {
		<-release
		return append(out, 1), nil
	})
	srv.HandleV3("fast", func(_ context.Context, _, out []byte) ([]byte, *Error) {
		return append(out, 2), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	m := dialV3(t, addr)

	slowDone := make(chan error, 1)
	go func() {
		slowDone <- m.CallV3(context.Background(), "slow", nil, nil)
	}()
	// The fast call must answer while the slow one is still blocked on
	// the server. A generous deadline distinguishes pipelining from a
	// head-of-line stall without being timing-sensitive.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.CallV3(ctx, "fast", nil, nil); err != nil {
		t.Fatalf("fast call stalled behind the slow one: %v", err)
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow call finished early: %v", err)
	default:
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
}

// TestV3ConcurrentCalls: many goroutines share one mux connection, each
// getting its own answer back — no cross-call corruption under load.
func TestV3ConcurrentCalls(t *testing.T) {
	_, addr := v3AddServer(t)
	m := dialV3(t, addr)
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			sum, err := addV3(t, m, i, 1000)
			if err != nil {
				errs <- err
				return
			}
			if sum != i+1000 {
				errs <- Errf(CodeInternal, "call %d answered %d", i, sum)
			}
		}(uint64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestV3JSONBridge: an op with only a JSON registration is still
// callable — and pipelined — over a v3 connection via CallJSON.
func TestV3JSONBridge(t *testing.T) {
	srv := NewServer()
	Handle(srv, "math.add", func(_ context.Context, req addReq) (addResp, error) {
		return addResp{Sum: req.A + req.B}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	m := dialV3(t, addr)
	var resp addResp
	if err := m.CallJSON(context.Background(), "math.add", addReq{A: 19, B: 23}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Sum != 42 {
		t.Fatalf("sum = %d", resp.Sum)
	}
	// Unknown ops keep their structured code through the bridge.
	if err := m.CallJSON(context.Background(), "no.such.op", nil, nil); ErrorCode(err) != CodeUnknownOp {
		t.Fatalf("unknown op err = %v", err)
	}
}

// TestV3NoBinaryCodec: a binary-bodied call against an op registered
// only as JSON never reaches the JSON handler; it fails with the typed
// marker the client uses to fall back to the bridge.
func TestV3NoBinaryCodec(t *testing.T) {
	srv := NewServer()
	Handle(srv, "math.add", func(_ context.Context, req addReq) (addResp, error) {
		return addResp{Sum: req.A + req.B}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	m := dialV3(t, addr)
	_, cerr := addV3(t, m, 1, 2)
	if !errors.Is(cerr, ErrNoBinaryCodec) {
		t.Fatalf("want ErrNoBinaryCodec, got %v", cerr)
	}
	if ErrorCode(cerr) != CodeBadRequest {
		t.Fatalf("code = %s, want %s", ErrorCode(cerr), CodeBadRequest)
	}
	// A truly unknown op is distinguishable from a JSON-only one.
	err = m.CallV3(context.Background(), "no.such.op", nil, nil)
	if errors.Is(err, ErrNoBinaryCodec) || ErrorCode(err) != CodeUnknownOp {
		t.Fatalf("unknown op err = %v", err)
	}
}

// TestV3ErrorCodePropagation: a binary handler's structured error
// arrives with its code intact, like every earlier generation.
func TestV3ErrorCodePropagation(t *testing.T) {
	srv := NewServer()
	srv.HandleV3("fail", func(context.Context, []byte, []byte) ([]byte, *Error) {
		return nil, Errf(CodeUnavailable, "deliberately unavailable")
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	m := dialV3(t, addr)
	err = m.CallV3(context.Background(), "fail", nil, nil)
	if ErrorCode(err) != CodeUnavailable {
		t.Fatalf("err = %v", err)
	}
}

// TestV3AbandonedCallSparesSiblings: a call whose context expires is
// abandoned without tearing the connection — a sibling call in flight
// and the next call both succeed on the same mux.
func TestV3AbandonedCallSparesSiblings(t *testing.T) {
	srv := NewServer()
	srv.Concurrent = true
	release := make(chan struct{})
	// The handler ignores its context so the client's deadline always
	// fires first: the call is abandoned client-side and the late reply
	// must be dropped without disturbing the connection.
	srv.HandleV3("stall", func(_ context.Context, _, out []byte) ([]byte, *Error) {
		<-release
		return out, nil
	})
	srv.HandleV3("quick", func(_ context.Context, _, out []byte) ([]byte, *Error) {
		return out, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	m := dialV3(t, addr)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err = m.CallV3(ctx, "stall", nil, nil)
	if ErrorCode(err) != CodeDeadline {
		t.Fatalf("stalled call err = %v, want %s", err, CodeDeadline)
	}
	close(release)
	// The connection survived the abandonment.
	if err := m.CallV3(context.Background(), "quick", nil, nil); err != nil {
		t.Fatalf("call after abandoned sibling: %v", err)
	}
}

// TestV3MalformedFrameClosesConn: a frame the server cannot parse means
// the two sides disagree about framing; the server hangs up rather than
// guessing at a resync.
func TestV3MalformedFrameClosesConn(t *testing.T) {
	_, addr := v3AddServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(v3Magic[:]); err != nil {
		t.Fatal(err)
	}
	// A one-byte frame: kind only, no id — malformed.
	if _, err := conn.Write([]byte{0, 0, 0, 1, v3Call}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read after malformed frame = %v, want EOF", err)
	}
}

// TestV3MixedGenerationsSameServer: one server answers v1, v2 and v3
// clients, each over its own connection, with the same results — the
// magic-peek negotiation never disturbs the JSON generations.
func TestV3MixedGenerationsSameServer(t *testing.T) {
	srv, addr := v3AddServer(t)
	srv.Handle("echo", func(req Request) Response {
		return Response{OK: true, Payload: req.Params["msg"]}
	})

	c := dialV2(t, addr)
	if got, err := c.Call("echo", map[string]string{"msg": "v1"}); err != nil || got != "v1" {
		t.Fatalf("v1 call = %q, %v", got, err)
	}
	var resp addResp
	if err := c.CallV2(context.Background(), "math.add", addReq{A: 2, B: 3}, &resp); err != nil || resp.Sum != 5 {
		t.Fatalf("v2 call = %+v, %v", resp, err)
	}
	m := dialV3(t, addr)
	if sum, err := addV3(t, m, 2, 3); err != nil || sum != 5 {
		t.Fatalf("v3 call = %d, %v", sum, err)
	}
}

// v3TickServer serves a binary "ticks" stream: req is a uvarint count
// (0 = run until cancelled), each event frame carries the tick number.
func v3TickServer(t *testing.T) string {
	t.Helper()
	srv := NewServer()
	srv.HandleStreamV3("ticks", func(ctx context.Context, body []byte) (V3StreamFunc, *Error) {
		d := NewDec(body)
		n := d.Uvarint()
		if err := d.Err(); err != nil {
			return nil, AsError(err)
		}
		if n == 99 {
			return nil, Errf(CodeUnavailable, "ticks are off today")
		}
		run := func(send V3Send) error {
			for i := uint64(0); n == 0 || i < n; i++ {
				select {
				case <-ctx.Done():
					return ctx.Err()
				default:
				}
				i := i
				if err := send(func(b []byte) []byte { return AppendUvarint(b, i) }); err != nil {
					return err
				}
				if n == 0 {
					time.Sleep(time.Millisecond)
				}
			}
			return nil
		}
		return run, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return addr
}

// TestV3StreamDelivery: a finite binary stream delivers every event in
// order and ends with io.EOF.
func TestV3StreamDelivery(t *testing.T) {
	m := dialV3(t, v3TickServer(t))
	ms, err := m.OpenStreamV3(context.Background(), "ticks",
		func(b []byte) []byte { return AppendUvarint(b, 3) })
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for {
		err := ms.Recv(func(_ byte, body []byte) error {
			d := NewDec(body)
			got = append(got, d.Uvarint())
			return d.Err()
		})
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("ticks = %v", got)
	}
}

// TestV3StreamSetupError: a failing open returns the structured error
// from OpenStreamV3 itself; nothing is left registered.
func TestV3StreamSetupError(t *testing.T) {
	m := dialV3(t, v3TickServer(t))
	_, err := m.OpenStreamV3(context.Background(), "ticks",
		func(b []byte) []byte { return AppendUvarint(b, 99) })
	if ErrorCode(err) != CodeUnavailable {
		t.Fatalf("setup err = %v", err)
	}
	// The connection is fine for the next stream.
	ms, err := m.OpenStreamV3(context.Background(), "ticks",
		func(b []byte) []byte { return AppendUvarint(b, 1) })
	if err != nil {
		t.Fatal(err)
	}
	ms.Cancel()
}

// TestV3StreamCancel: cancelling an endless stream ends it cleanly —
// Recv observes the end frame, never a hang.
func TestV3StreamCancel(t *testing.T) {
	m := dialV3(t, v3TickServer(t))
	ms, err := m.OpenStreamV3(context.Background(), "ticks",
		func(b []byte) []byte { return AppendUvarint(b, 0) })
	if err != nil {
		t.Fatal(err)
	}
	// Take a couple of events, then hang up.
	for i := 0; i < 2; i++ {
		if err := ms.Recv(func(byte, []byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := ms.Cancel(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	done := make(chan error, 1)
	go func() {
		for {
			if err := ms.Recv(func(byte, []byte) error { return nil }); err != nil {
				done <- err
				return
			}
		}
	}()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("after cancel, Recv = %v, want EOF", err)
		}
	case <-deadline:
		t.Fatal("stream did not end after cancel")
	}
}

// TestV3StreamNoBinaryCodec: a binary open against a JSON-only stream
// op fails with the typed marker instead of feeding the JSON handler
// garbage.
func TestV3StreamNoBinaryCodec(t *testing.T) {
	m := dialV3(t, streamServer(t)) // JSON "ticks" registrations only
	_, err := m.OpenStreamV3(context.Background(), "ticks",
		func(b []byte) []byte { return AppendUvarint(b, 3) })
	if !errors.Is(err, ErrNoBinaryCodec) {
		t.Fatalf("want ErrNoBinaryCodec, got %v", err)
	}
	_, err = m.OpenStreamV3(context.Background(), "no.such.stream", nil)
	if errors.Is(err, ErrNoBinaryCodec) || ErrorCode(err) != CodeUnknownOp {
		t.Fatalf("unknown stream err = %v", err)
	}
}

// TestV3StalledStreamDoesNotBlockCalls: the demux loop must never park
// on a stream whose consumer stopped receiving — call replies demux
// regardless (a blocked loop was a head-of-line deadlock for any
// goroutine interleaving Recv with calls), and once the consumer has
// fallen maxStreamInbox frames behind, the stream alone dies with
// CodeOverloaded while the connection stays usable.
func TestV3StalledStreamDoesNotBlockCalls(t *testing.T) {
	srv := NewServer()
	srv.Concurrent = true
	srv.HandleV3("ping", func(_ context.Context, _, out []byte) ([]byte, *Error) {
		return append(out, 'p'), nil
	})
	srv.HandleStreamV3("flood", func(ctx context.Context, _ []byte) (V3StreamFunc, *Error) {
		return func(send V3Send) error {
			for i := uint64(0); ; i++ {
				select {
				case <-ctx.Done():
					return ctx.Err()
				default:
				}
				i := i
				if err := send(func(b []byte) []byte { return AppendUvarint(b, i) }); err != nil {
					return err
				}
			}
		}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	m := dialV3(t, addr)
	ms, err := m.OpenStreamV3(context.Background(), "flood", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The server floods events nobody receives; every call must still
	// answer inside its deadline.
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := m.CallV3(ctx, "ping", nil, nil)
		cancel()
		if err != nil {
			t.Fatalf("call %d alongside a stalled stream: %v", i, err)
		}
	}
	// The abandoned consumer finds its frames up to the inbox bound and
	// then the typed overflow error — never a hang, never a conn error.
	var streamErr error
	for i := 0; i <= maxStreamInbox; i++ {
		if streamErr = ms.Recv(func(byte, []byte) error { return nil }); streamErr != nil {
			break
		}
	}
	if ErrorCode(streamErr) != CodeOverloaded {
		t.Fatalf("stalled stream err = %v, want CodeOverloaded", streamErr)
	}
	// The connection survived its stream's death.
	if err := m.CallV3(context.Background(), "ping", nil, nil); err != nil {
		t.Fatalf("call after stream overflow: %v", err)
	}
}

// TestV3CallsInterleaveWithStream: unlike a v2 stream, an open v3
// stream does not dedicate the connection — calls keep answering on the
// same mux while events flow.
func TestV3CallsInterleaveWithStream(t *testing.T) {
	srv := NewServer()
	srv.Concurrent = true
	srv.HandleV3("ping", func(_ context.Context, _, out []byte) ([]byte, *Error) {
		return append(out, 'p'), nil
	})
	srv.HandleStreamV3("ticks", func(ctx context.Context, _ []byte) (V3StreamFunc, *Error) {
		return func(send V3Send) error {
			for i := uint64(0); ; i++ {
				select {
				case <-ctx.Done():
					return ctx.Err()
				default:
				}
				i := i
				if err := send(func(b []byte) []byte { return AppendUvarint(b, i) }); err != nil {
					return err
				}
				time.Sleep(time.Millisecond)
			}
		}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	m := dialV3(t, addr)
	ms, err := m.OpenStreamV3(context.Background(), "ticks", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Cancel()
	for i := 0; i < 5; i++ {
		if err := ms.Recv(func(byte, []byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if err := m.CallV3(context.Background(), "ping", nil, nil); err != nil {
			t.Fatalf("call %d alongside stream: %v", i, err)
		}
	}
}

// TestV3ServerCloseFailsInFlight: closing the server fails a pending v3
// call with a connection error instead of hanging the caller, while
// Close itself waits out the running handler (the v2 contract).
func TestV3ServerCloseFailsInFlight(t *testing.T) {
	srv := NewServer()
	srv.Concurrent = true
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.HandleV3("stall", func(_ context.Context, _, out []byte) ([]byte, *Error) {
		close(entered)
		<-release
		return out, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m := dialV3(t, addr)
	done := make(chan error, 1)
	go func() {
		done <- m.CallV3(context.Background(), "stall", nil, nil)
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never entered")
	}
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	// The connection dies with Close, so the pending call fails promptly
	// even though the handler is still running.
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call against a closed server succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung through server close")
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close did not return after the handler finished")
	}
}
