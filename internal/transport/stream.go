package transport

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// This file is the streaming extension of the v2 protocol: server-push
// event streams over the same length-prefixed JSON connection. A client
// opens a stream by sending a v2 request frame with "stream":true; the
// server answers with an ack frame ("stream":true), then a sequence of
// event frames (each carrying a JSON body), and finally an end frame
// ("end":true, OK or carrying a structured error). The client cancels by
// sending an OpStreamCancel frame; the server tears the stream down and
// still sends the end frame, so cancellation propagates both ways. While
// a stream is open the connection is dedicated to it: request/response
// calls resume only after the end frame of a client-cancelled stream.

// OpStreamCancel is the frame a client sends to stop an open stream.
const OpStreamCancel = "stream.cancel"

// StreamFunc pumps one open stream: it calls send once per event frame
// and returns when the stream is over (a nil or context-cancellation
// return ends the stream cleanly; any other error reaches the client as
// a structured end frame).
type StreamFunc func(send func(v interface{}) error) error

// rawStreamHandler is the type-erased form a registered stream handler
// is stored in: body bytes in, a running stream (or a setup error) out.
type rawStreamHandler func(ctx context.Context, body json.RawMessage) (StreamFunc, *Error)

// HandleStream registers a streaming v2 handler for op on s, replacing
// any previous one. open validates the request and attaches whatever
// sources the stream needs; the returned StreamFunc then runs for the
// stream's lifetime with ctx cancelled when the client cancels or the
// connection drops. A setup error is delivered to the client as the
// stream's only frame, with its structured code preserved.
func HandleStream[Req any](s *Server, op string,
	open func(ctx context.Context, req Req) (StreamFunc, error)) {
	raw := func(ctx context.Context, body json.RawMessage) (StreamFunc, *Error) {
		var req Req
		if len(body) > 0 {
			//gridmon:nolint wirecode v2 stream requests are JSON by definition
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, Errf(CodeBadRequest, "op %q: decoding request: %v", op, err)
			}
		}
		run, err := open(ctx, req)
		if err != nil {
			return nil, AsError(err)
		}
		return run, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.streams[op] = raw
}

// writeFlush writes one frame and flushes it to the socket (streams must
// not sit in the buffer waiting for more output).
func writeFlush(w *bufio.Writer, v interface{}) error {
	if err := WriteFrame(w, v); err != nil {
		return err
	}
	return w.Flush()
}

// serveStream runs one stream on a connection: ack, event frames, end
// frame. It owns both directions while the stream is open — the read
// side watches for the client's cancel frame. The return value reports
// whether the connection is reusable for further requests: true only
// when the client cancelled explicitly (it is then blocked on the end
// frame and the read side is quiet again).
func (s *Server) serveStream(r *bufio.Reader, w *bufio.Writer, req requestFrame, open rawStreamHandler) bool {
	//gridmon:nolint ctxflow server-side stream root: the client cancels with a wire frame, which the watcher below turns into this ctx's cancel
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	run, herr := open(ctx, req.Body)
	if herr != nil {
		writeFlush(w, responseFrame{V: 2, Stream: true, End: true, Error: herr.Message, Code: herr.Code})
		return true
	}
	if err := writeFlush(w, responseFrame{V: 2, OK: true, Stream: true}); err != nil {
		return false
	}
	// The watcher keeps reading so a cancel frame — or the connection
	// dropping — stops the stream. Any other frame during a stream is a
	// protocol violation and tears the stream down too.
	sawCancel := make(chan bool, 1)
	go func() {
		got := false
		var f requestFrame
		if err := ReadFrame(r, &f); err == nil && f.Op == OpStreamCancel {
			got = true
		}
		sawCancel <- got
		cancel()
	}()
	send := func(v interface{}) error {
		//gridmon:nolint wirecode v2 stream events are JSON by definition
		b, err := json.Marshal(v)
		if err != nil {
			return Errf(CodeInternal, "op %q: encoding event: %v", req.Op, err)
		}
		return writeFlush(w, responseFrame{V: 2, OK: true, Stream: true, Body: b})
	}
	err := run(send)
	cancel()
	if e := AsError(err); err != nil && e.Code != CodeCanceled && e.Code != CodeDeadline {
		writeFlush(w, responseFrame{V: 2, Stream: true, End: true, Error: e.Message, Code: e.Code})
	} else {
		writeFlush(w, responseFrame{V: 2, OK: true, Stream: true, End: true})
	}
	select {
	case got := <-sawCancel:
		return got
	default:
		// The stream ended server-side with the watcher still blocked in
		// a read; the connection cannot be returned to the request loop.
		return false
	}
}

// ClientStream is one open server-push stream on a client connection.
// Recv is single-reader; Cancel may be called from any goroutine.
type ClientStream struct {
	c        *Client
	op       string
	cancelMu sync.Mutex
	canceled bool
}

// StreamV2 opens a server-push stream for op: it sends the stream
// request and waits for the server's ack, returning a ClientStream to
// receive event frames from. A setup failure on the server side is
// returned here with its structured code, exactly like a failed CallV2.
// The connection is dedicated to the stream until it ends; concurrent
// Call/CallV2 on the same client fail rather than corrupt the framing.
func (c *Client) StreamV2(ctx context.Context, op string, req interface{}) (*ClientStream, error) {
	frame := requestFrame{V: 2, Op: op, Stream: true}
	if req != nil {
		//gridmon:nolint wirecode StreamV2 speaks the JSON wire generation
		b, err := json.Marshal(req)
		if err != nil {
			return nil, Errf(CodeBadRequest, "op %q: encoding request: %v", op, err)
		}
		frame.Body = b
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.streaming {
		return nil, Errf(CodeBadRequest, "op %q: connection already carries a stream", op)
	}
	if err := ctx.Err(); err != nil {
		return nil, AsError(err)
	}
	// Bound the handshake by the context: a deadline arms the socket,
	// and a watcher poisons it on cancellation (the same discipline as
	// CallV2 — see guardConn), so a stalled server cannot wedge the
	// subscribe forever and an early cancel does not wait out a later
	// deadline.
	defer c.guardConn(ctx)()
	handshakeErr := func(err error) error {
		// Report the caller's own cancellation/expiry in preference to
		// the i/o error it surfaced as.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Errf(AsError(ctxErr).Code, "op %q: %v", op, ctxErr)
		}
		return AsError(err)
	}
	if err := WriteFrame(c.w, frame); err != nil {
		return nil, handshakeErr(err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, handshakeErr(err)
	}
	var rf responseFrame
	if err := ReadFrame(c.r, &rf); err != nil {
		return nil, handshakeErr(err)
	}
	if rf.V < 2 {
		return nil, Errf(CodeProtocol,
			"op %q: server answered with the v1 protocol (streams need a v2 server)", op)
	}
	if rf.End || !rf.OK {
		code := rf.Code
		if code == "" {
			code = CodeExec
		}
		return nil, &Error{Code: code, Message: rf.Error}
	}
	c.streaming = true
	return &ClientStream{c: c, op: op}, nil
}

// Recv reads the next event frame into v (which may be nil to discard
// it). It returns io.EOF on a clean end of stream and the server's
// structured error on a failed one. After either — or after a read
// failure — the client stops refusing request/response calls, but only
// a stream the client itself cancelled leaves the connection usable:
// the server closes the connection when a stream ends any other way
// (see the package note above), so after a server-initiated end or a
// read failure the right move is Close and re-Dial.
func (cs *ClientStream) Recv(v interface{}) error {
	var rf responseFrame
	if err := ReadFrame(cs.c.r, &rf); err != nil {
		cs.streamOver()
		return err
	}
	if rf.End {
		cs.streamOver()
		if rf.OK {
			return io.EOF
		}
		code := rf.Code
		if code == "" {
			code = CodeExec
		}
		return &Error{Code: code, Message: rf.Error}
	}
	if v != nil && len(rf.Body) > 0 {
		//gridmon:nolint wirecode StreamV2 speaks the JSON wire generation
		if err := json.Unmarshal(rf.Body, v); err != nil {
			return Errf(CodeInternal, "op %q: decoding event: %v", cs.op, err)
		}
	}
	return nil
}

// streamOver releases the connection from stream mode and disarms any
// deadline Cancel left on it.
func (cs *ClientStream) streamOver() {
	cs.c.mu.Lock()
	cs.c.streaming = false
	cs.c.mu.Unlock()
	cs.c.conn.SetReadDeadline(time.Time{})
}

// Cancel asks the server to stop the stream. The server drains its
// sources and sends the end frame, which the reader observes through
// Recv. A read deadline is armed so a dead peer cannot block the final
// Recv forever. Cancel is idempotent.
func (cs *ClientStream) Cancel() error {
	cs.cancelMu.Lock()
	defer cs.cancelMu.Unlock()
	if cs.canceled {
		return nil
	}
	cs.canceled = true
	cs.c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(cs.c.w, requestFrame{V: 2, Op: OpStreamCancel}); err != nil {
		return err
	}
	return cs.c.w.Flush()
}

// Close closes the underlying connection (the abrupt teardown; prefer
// Cancel followed by draining Recv for a clean one).
func (cs *ClientStream) Close() error { return cs.c.Close() }
