package transport

import (
	"context"
	"testing"
	"time"
)

// The Server.Close contract under load, in three parts: a client blocked
// on an in-flight v2 request unblocks with an error the moment Close
// cuts the connection; Close itself waits for the in-flight handler to
// finish (graceful to server-side work, abrupt to the wire); and a live
// subscribe stream's client terminates instead of hanging.

// TestServerCloseWithInFlightV2: Close during a v2 exchange. The client
// must not hang on the dead connection, and Close must not return until
// the handler has.
func TestServerCloseWithInFlightV2(t *testing.T) {
	srv := NewServer()
	entered := make(chan struct{})
	release := make(chan struct{})
	Handle(srv, "block", func(context.Context, struct{}) (struct{}, error) {
		close(entered)
		<-release
		return struct{}{}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	callErr := make(chan error, 1)
	go func() {
		callErr <- c.CallV2(context.Background(), "block", nil, nil)
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never entered")
	}

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	// The connection dies with Close, so the blocked client call must
	// fail promptly even though the handler is still running.
	select {
	case err := <-callErr:
		if err == nil {
			t.Fatal("call over a closed server succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client call hung across Server.Close")
	}
	// But Close itself waits for the in-flight handler.
	select {
	case <-closed:
		t.Fatal("Server.Close returned while a handler was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close hung after the handler finished")
	}
}

// TestServerCloseUnblocksStreamClient: a client blocked in Recv on a
// live stream gets a terminal error when the server closes — never a
// hang, and the server's stream handler is unwound too.
func TestServerCloseUnblocksStreamClient(t *testing.T) {
	srv := NewServer()
	handlerDone := make(chan error, 1)
	HandleStream(srv, "forever", func(ctx context.Context, _ struct{}) (StreamFunc, error) {
		return func(send func(v interface{}) error) error {
			if err := send(tick{N: 0}); err != nil {
				return err
			}
			<-ctx.Done()
			handlerDone <- ctx.Err()
			return ctx.Err()
		}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs, err := c.StreamV2(context.Background(), "forever", nil)
	if err != nil {
		t.Fatal(err)
	}
	var first tick
	if err := cs.Recv(&first); err != nil {
		t.Fatalf("first event: %v", err)
	}

	recvErr := make(chan error, 1)
	go func() {
		var v tick
		recvErr <- cs.Recv(&v)
	}()
	srv.Close()
	select {
	case err := <-recvErr:
		if err == nil {
			t.Fatal("Recv after Server.Close returned an event")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv hung across Server.Close")
	}
	select {
	case <-handlerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("stream handler was not unwound by Server.Close")
	}
}

// TestServerCloseRefusesNewConns: after Close the listener is down —
// new dials fail instead of connecting to a half-dead server.
func TestServerCloseRefusesNewConns(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if c, err := Dial(addr); err == nil {
		c.Close()
		t.Fatal("dial succeeded after Server.Close")
	}
}
