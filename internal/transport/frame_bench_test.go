package transport

import (
	"bytes"
	"testing"
)

// The frame benchmarks measure the read loop's per-frame cost: ReadFrame
// allocates a fresh payload buffer per frame, ReadFrameBuf reuses one
// grow-only buffer the way the server's per-connection loop does. The
// request below is a realistic grid.query frame (~100 bytes of JSON).

func frameBytes(b *testing.B) []byte {
	var buf bytes.Buffer
	req := requestFrame{V: 2, Op: "grid.query",
		Body: []byte(`{"system":"MDS","role":"Aggregate Information Server","expr":"(objectclass=MdsCpu)"}`)}
	if err := WriteFrame(&buf, req); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkReadFrame(b *testing.B) {
	frame := frameBytes(b)
	r := bytes.NewReader(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		var req requestFrame
		if err := ReadFrame(r, &req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFrameBuf(b *testing.B) {
	frame := frameBytes(b)
	r := bytes.NewReader(frame)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		var req requestFrame
		if err := ReadFrameBuf(r, &buf, &req); err != nil {
			b.Fatal(err)
		}
	}
}
