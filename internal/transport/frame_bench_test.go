package transport

import (
	"bytes"
	"context"
	"testing"
)

// The frame benchmarks measure the read loop's per-frame cost: ReadFrame
// allocates a fresh payload buffer per frame, ReadFrameBuf reuses one
// grow-only buffer the way the server's per-connection loop does. The
// request below is a realistic grid.query frame (~100 bytes of JSON).
// BenchmarkV3CallFrame is the binary generation's counterpart: the same
// logical request as a v3 call frame, written and re-parsed exactly the
// way MuxClient.call and the server read loop do.

func frameBytes(b *testing.B) []byte {
	var buf bytes.Buffer
	req := requestFrame{V: 2, Op: "grid.query",
		Body: []byte(`{"system":"MDS","role":"Aggregate Information Server","expr":"(objectclass=MdsCpu)"}`)}
	if err := WriteFrame(&buf, req); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkReadFrame(b *testing.B) {
	frame := frameBytes(b)
	r := bytes.NewReader(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		var req requestFrame
		if err := ReadFrame(r, &req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkV3CallFrame: one grid.query-sized request through the v3
// framing — header append, 4-byte length prefix, read back into the
// per-connection reuse buffer, header parse. Steady state allocates
// nothing; compare with BenchmarkReadFrameBuf for the JSON frame cost.
func BenchmarkV3CallFrame(b *testing.B) {
	// A binary body about the size of the JSON request above.
	body := AppendString(nil, "MDS")
	body = AppendString(body, "Aggregate Information Server")
	body = AppendString(body, "")
	body = AppendString(body, "(objectclass=MdsCpu)")
	body = AppendUvarint(body, 0)
	ctx := context.Background()
	var wire bytes.Buffer
	var frame, readBuf []byte
	r := bytes.NewReader(nil)
	op := "grid.query"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, _ = appendCallHeader(frame[:0], v3Call, uint64(i), op, 0, ctx)
		frame = append(frame, body...)
		wire.Reset()
		var l [4]byte
		l[0] = byte(len(frame) >> 24)
		l[1] = byte(len(frame) >> 16)
		l[2] = byte(len(frame) >> 8)
		l[3] = byte(len(frame))
		wire.Write(l[:])
		wire.Write(frame)
		r.Reset(wire.Bytes())
		payload, err := readFrameInto(r, &readBuf)
		if err != nil {
			b.Fatal(err)
		}
		d := NewDec(payload)
		if kind := d.Byte(); kind != v3Call {
			b.Fatalf("kind = %d", kind)
		}
		_ = d.Uvarint() // id
		op = d.StringReuse(op)
		_ = d.Byte()    // flags
		_ = d.Uvarint() // timeout
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}

func BenchmarkReadFrameBuf(b *testing.B) {
	frame := frameBytes(b)
	r := bytes.NewReader(frame)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		var req requestFrame
		if err := ReadFrameBuf(r, &buf, &req); err != nil {
			b.Fatal(err)
		}
	}
}
