package transport

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// This file is the client half of the v3 wire format: a pipelined,
// multiplexing connection. Where the v2 Client serializes one call at a
// time over its connection, a MuxClient assigns each call a request id,
// writes frames back-to-back, and a demux goroutine routes responses to
// per-call completion channels — so K callers share one connection with
// their calls in flight simultaneously, bounded by maxInFlight. Streams
// multiplex over the same connection by id, interleaving with calls.

// DefaultMaxInFlight bounds a MuxClient's concurrently in-flight calls
// when the dialer does not choose a bound.
const DefaultMaxInFlight = 32

// ErrNoBinaryCodec matches (via errors.Is) the failure of a
// binary-bodied call or stream open against a server that has the op
// registered only as JSON: the op exists, but this server cannot decode
// the binary body. Callers should retry the op through CallJSON (or a
// JSON-generation connection) and remember the answer — the server's
// registrations do not change over a connection's lifetime.
var ErrNoBinaryCodec = errors.New("transport: op has no binary codec on this server")

// noBinaryCodecError wraps the server's typed error so the structured
// code survives while errors.Is(err, ErrNoBinaryCodec) reports true.
type noBinaryCodecError struct{ err *Error }

func (e *noBinaryCodecError) Error() string        { return e.err.Error() }
func (e *noBinaryCodecError) Unwrap() error        { return e.err }
func (e *noBinaryCodecError) Is(target error) bool { return target == ErrNoBinaryCodec }

// muxReply is one demultiplexed response frame, handed from the demux
// goroutine to the waiting call or stream. body is pooled; the receiver
// releases it.
type muxReply struct {
	kind  byte
	flags byte
	code  Code
	msg   string
	body  *wireBuf
}

// err converts an error reply to its structured error.
func (r *muxReply) err() *Error {
	code := r.code
	if code == "" {
		code = CodeExec
	}
	return &Error{Code: code, Message: r.msg}
}

// release returns the reply's body to the pool.
func (r *muxReply) release() {
	if r.body != nil {
		putBuf(r.body)
		r.body = nil
	}
}

// MuxClient is a pipelined v3 connection to a transport server. It is
// safe for concurrent use: up to maxInFlight calls proceed at once, each
// matched to its response by request id rather than by position. A
// connection-level failure fails every in-flight call and stream with
// the same error; the client is then dead and must be re-dialed (the
// resilient RemoteGrid layers retry/reconnect on top).
type MuxClient struct {
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes + flush
	w    *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	calls   map[uint64]chan muxReply
	streams map[uint64]*MuxStream
	err     error // terminal connection error, set once

	sem chan struct{} // in-flight call slots
}

// DialV3 connects to a server speaking the v3 binary protocol.
// maxInFlight bounds pipelined in-flight calls (0 uses
// DefaultMaxInFlight). The server must answer the v3 magic: a v1/v2-only
// peer fails loudly on the first call rather than mis-executing.
func DialV3(ctx context.Context, addr string, maxInFlight int) (*MuxClient, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewMuxClient(conn, maxInFlight), nil
}

// NewMuxClient wraps an established connection as a v3 client — the
// client-side fault-injection seam, like NewClient for v2. The magic
// preamble is buffered now and flushed with the first frame.
func NewMuxClient(conn net.Conn, maxInFlight int) *MuxClient {
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	m := &MuxClient{
		conn:    conn,
		w:       bufio.NewWriter(conn),
		calls:   make(map[uint64]chan muxReply),
		streams: make(map[uint64]*MuxStream),
		sem:     make(chan struct{}, maxInFlight),
	}
	m.w.Write(v3Magic[:])
	go m.readLoop()
	return m
}

// readLoop is the demux goroutine: it reads response frames for the
// connection's lifetime and routes each to its call or stream by id. It
// is the only reader and the only code that terminates streams, so
// stream channels close exactly once.
func (m *MuxClient) readLoop() {
	r := bufio.NewReader(m.conn)
	var buf []byte
	for {
		payload, err := readFrameInto(r, &buf)
		if err != nil {
			m.fail(err)
			return
		}
		d := NewDec(payload)
		kind := d.Byte()
		id := d.Uvarint()
		flags := d.Byte()
		reply := muxReply{kind: kind, flags: flags}
		if flags&v3FlagError != 0 {
			reply.code = Code(d.String())
			reply.msg = d.String()
		}
		if d.Err() != nil {
			m.fail(Errf(CodeProtocol, "transport: malformed v3 response frame"))
			return
		}
		if rest := d.Rest(); len(rest) > 0 {
			reply.body = getBuf()
			reply.body.b = append(reply.body.b, rest...)
		}
		switch kind {
		case v3Reply:
			m.mu.Lock()
			ch := m.calls[id]
			delete(m.calls, id)
			m.mu.Unlock()
			if ch != nil {
				ch <- reply // buffered: never blocks
			} else {
				// The caller gave up (context done) before the server
				// answered; drop the late response.
				reply.release()
			}
		case v3Ack, v3Event, v3End:
			m.mu.Lock()
			ms := m.streams[id]
			if kind == v3End {
				delete(m.streams, id)
			}
			m.mu.Unlock()
			if ms == nil {
				reply.release()
				continue
			}
			// push never blocks: the demux loop must keep routing call
			// replies even when a stream's consumer has stalled.
			if ms.push(reply, kind == v3End) {
				m.mu.Lock()
				delete(m.streams, id)
				m.mu.Unlock()
				// Best effort: stop the server producing for a dead
				// stream. A write failure is connection-fatal and
				// surfaces on this loop's next read.
				ms.Cancel()
			}
		default:
			m.fail(Errf(CodeProtocol, "transport: unknown v3 response kind %d", kind))
			return
		}
	}
}

// fail terminates the connection: every pending call's channel closes
// (callers observe Err) and every open stream ends with the error.
func (m *MuxClient) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	calls := m.calls
	streams := m.streams
	m.calls = make(map[uint64]chan muxReply)
	m.streams = make(map[uint64]*MuxStream)
	m.mu.Unlock()
	for _, ch := range calls {
		close(ch)
	}
	for _, ms := range streams {
		ms.terminate(err)
	}
	// The connection is unusable either way; closing it makes sure the
	// demux goroutine's blocking read returns too.
	m.conn.Close()
}

// Err returns the connection's terminal error, or nil while it is live.
func (m *MuxClient) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// connErr is what a call returns when the connection died under it.
func (m *MuxClient) connErr() error {
	if err := m.Err(); err != nil {
		return err
	}
	return io.ErrUnexpectedEOF
}

// writeFrame writes one request frame under the write lock. A write
// failure is connection-fatal: the peer's framing state is unknown, so
// everything in flight is failed.
func (m *MuxClient) writeFrame(payload []byte) error {
	if len(payload) > MaxFrame {
		return Errf(CodeBadRequest, "transport: v3 frame of %d bytes exceeds limit", len(payload))
	}
	var l [4]byte
	l[0] = byte(len(payload) >> 24)
	l[1] = byte(len(payload) >> 16)
	l[2] = byte(len(payload) >> 8)
	l[3] = byte(len(payload))
	m.wmu.Lock()
	err := func() error {
		if _, err := m.w.Write(l[:]); err != nil {
			return err
		}
		if _, err := m.w.Write(payload); err != nil {
			return err
		}
		return m.w.Flush()
	}()
	m.wmu.Unlock()
	if err != nil {
		m.fail(err)
	}
	return err
}

// register allocates a request id and completion channel.
func (m *MuxClient) register() (uint64, chan muxReply, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return 0, nil, m.err
	}
	m.nextID++
	ch := make(chan muxReply, 1)
	m.calls[m.nextID] = ch
	return m.nextID, ch, nil
}

// unregister abandons a pending call (context expiry); a late response
// is then dropped by the demux loop.
func (m *MuxClient) unregister(id uint64, ch chan muxReply) {
	m.mu.Lock()
	delete(m.calls, id)
	m.mu.Unlock()
	select {
	case reply, ok := <-ch:
		if ok {
			reply.release()
		}
	default:
	}
}

// appendCallHeader appends a request frame header: kind, id, op, flags,
// and ctx's remaining budget as timeout_ms (CallV2's propagation rule).
func appendCallHeader(b []byte, kind byte, id uint64, op string, flags byte, ctx context.Context) ([]byte, error) {
	b = append(b, kind)
	b = AppendUvarint(b, id)
	b = AppendString(b, op)
	b = append(b, flags)
	var timeoutMS uint64
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			return nil, Errf(CodeDeadline, "op %q: %v", op, context.DeadlineExceeded)
		}
		timeoutMS = uint64(remaining / time.Millisecond)
		if timeoutMS == 0 {
			timeoutMS = 1
		}
	}
	return AppendUvarint(b, timeoutMS), nil
}

// call runs one pipelined exchange: acquire an in-flight slot, register,
// write the request frame, wait for the response or the context. enc
// appends the request body; handle consumes the response body (a pooled
// view valid only during the callback).
func (m *MuxClient) call(ctx context.Context, op string, flags byte, enc func(b []byte) []byte, handle func(flags byte, body []byte) error) error {
	if err := ctx.Err(); err != nil {
		return AsError(err)
	}
	select {
	case m.sem <- struct{}{}:
	case <-ctx.Done():
		return Errf(AsError(ctx.Err()).Code, "op %q: %v", op, ctx.Err())
	}
	defer func() { <-m.sem }()
	id, ch, err := m.register()
	if err != nil {
		return err
	}
	pb := getBuf()
	b, err := appendCallHeader(pb.b, v3Call, id, op, flags, ctx)
	if err != nil {
		putBuf(pb)
		m.unregister(id, ch)
		return err
	}
	if enc != nil {
		b = enc(b)
	}
	pb.b = b[:0]
	err = m.writeFrame(b)
	putBuf(pb)
	if err != nil {
		m.unregister(id, ch)
		return err
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			return m.connErr()
		}
		defer reply.release()
		if reply.flags&v3FlagError != 0 {
			if reply.flags&v3FlagJSON != 0 && flags&v3FlagJSON == 0 {
				return &noBinaryCodecError{err: reply.err()}
			}
			return reply.err()
		}
		if handle != nil {
			var body []byte
			if reply.body != nil {
				body = reply.body.b
			}
			return handle(reply.flags, body)
		}
		return nil
	case <-ctx.Done():
		// Abandon the call without poisoning the connection: the pending
		// entry is dropped, the demux loop discards the late response,
		// and sibling in-flight calls proceed undisturbed.
		m.unregister(id, ch)
		return Errf(AsError(ctx.Err()).Code, "op %q: %v", op, ctx.Err())
	}
}

// CallV3 performs one binary-bodied exchange: enc appends the request
// body to the frame, dec decodes the response body (a view valid only
// during the callback). Server failures return as *Error with their
// structured code, exactly like CallV2.
func (m *MuxClient) CallV3(ctx context.Context, op string, enc func(b []byte) []byte, dec func(body []byte) error) error {
	return m.call(ctx, op, 0, enc, func(flags byte, body []byte) error {
		if flags&v3FlagJSON != 0 {
			return Errf(CodeProtocol, "op %q: server answered a binary request with a JSON body", op)
		}
		if dec != nil {
			return dec(body)
		}
		return nil
	})
}

// CallJSON performs one JSON-bodied exchange over the pipelined
// connection — the v3 bridge for ops without a binary codec: the server
// routes it through the op's registered v2 handler, so every op is
// callable (and pipelined) over one v3 connection.
func (m *MuxClient) CallJSON(ctx context.Context, op string, req, resp interface{}) error {
	var enc func(b []byte) []byte
	if req != nil {
		//gridmon:nolint wirecode v2 JSON bridge: ops without a binary codec ride v3 frames with JSON bodies
		body, err := json.Marshal(req)
		if err != nil {
			return Errf(CodeBadRequest, "op %q: encoding request: %v", op, err)
		}
		enc = func(b []byte) []byte { return append(b, body...) }
	}
	return m.call(ctx, op, v3FlagJSON, enc, func(_ byte, body []byte) error {
		if resp != nil && len(body) > 0 {
			//gridmon:nolint wirecode v2 JSON bridge: ops without a binary codec ride v3 frames with JSON bodies
			if err := json.Unmarshal(body, resp); err != nil {
				return Errf(CodeInternal, "op %q: decoding response: %v", op, err)
			}
		}
		return nil
	})
}

// maxStreamInbox bounds the frames a stream queues client-side between
// the demux loop and its consumer. The demux loop must never block on a
// stream (a blocked demux loop would also stall every call reply behind
// it — head-of-line deadlock when one goroutine interleaves Recv with
// calls), so a consumer that falls this far behind has its stream
// killed with CodeOverloaded instead of wedging the connection. The
// gridmon pump drains promptly (Stream.emit drops, never blocks), so
// the cap only bites raw-API consumers that stopped receiving.
const maxStreamInbox = 256

// MuxStream is one open server-push stream multiplexed on a MuxClient.
// Recv is single-reader; Cancel may be called from any goroutine.
type MuxStream struct {
	m  *MuxClient
	id uint64

	qMu       sync.Mutex
	q         []muxReply    // guarded by qMu: FIFO inbox, demux loop appends
	qHead     int           // guarded by qMu: next frame to hand to Recv
	done      bool          // guarded by qMu: no further frames will arrive
	failErr   error         // guarded by qMu: terminal error once queue drains
	abandoned bool          // guarded by qMu: consumer gave up; frames released on arrival
	notify    chan struct{} // cap-1 doorbell: push signals, next re-checks

	cancelMu sync.Mutex
	canceled bool
}

// push hands one frame from the demux loop to the stream's inbox. It
// never blocks; an inbox already holding maxStreamInbox frames reports
// overflow (the frame is released and the stream marked failed — the
// caller detaches it and cancels the server side).
func (s *MuxStream) push(reply muxReply, last bool) (overflow bool) {
	s.qMu.Lock()
	if s.done || s.abandoned {
		s.qMu.Unlock()
		reply.release()
		return false
	}
	if !last && len(s.q)-s.qHead >= maxStreamInbox {
		s.done = true
		s.failErr = Errf(CodeOverloaded,
			"transport: stream consumer fell %d frames behind; stream dropped", maxStreamInbox)
		s.qMu.Unlock()
		reply.release()
		s.notifyOne()
		return true
	}
	s.q = append(s.q, reply)
	if last {
		s.done = true
	}
	s.qMu.Unlock()
	s.notifyOne()
	return false
}

// next blocks until a queued frame is available and pops it. Once the
// stream is done and drained it returns the terminal error; a signal on
// cancel returns errStreamWaitCanceled (the handshake's ctx path).
func (s *MuxStream) next(cancel <-chan struct{}) (muxReply, error) {
	for {
		s.qMu.Lock()
		if s.qHead < len(s.q) {
			reply := s.q[s.qHead]
			s.q[s.qHead] = muxReply{}
			s.qHead++
			if s.qHead == len(s.q) {
				s.q, s.qHead = s.q[:0], 0
			}
			s.qMu.Unlock()
			return reply, nil
		}
		if s.done {
			err := s.failErr
			s.qMu.Unlock()
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			return muxReply{}, err
		}
		s.qMu.Unlock()
		select {
		case <-s.notify:
		case <-cancel:
			return muxReply{}, errStreamWaitCanceled
		}
	}
}

// errStreamWaitCanceled is next's cancel-channel result, only ever seen
// inside the OpenStreamV3 handshake.
var errStreamWaitCanceled = errors.New("transport: stream wait canceled")

// terminate marks the stream failed with err: already-queued frames
// still drain, then Recv returns err. Idempotent; the first terminal
// state wins.
func (s *MuxStream) terminate(err error) {
	s.qMu.Lock()
	if !s.done {
		s.done = true
		s.failErr = err
	}
	s.qMu.Unlock()
	s.notifyOne()
}

// notifyOne rings the consumer's doorbell without blocking.
func (s *MuxStream) notifyOne() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// OpenStreamV3 opens a binary-bodied server-push stream for op: enc
// appends the request body, and the returned MuxStream receives event
// frames. Setup failures return here with their structured code. The
// connection is NOT dedicated to the stream — calls keep multiplexing,
// and a stalled consumer never blocks them: frames queue client-side up
// to maxStreamInbox, past which the stream alone is killed with
// CodeOverloaded. Dedicate a connection per long-lived stream (as
// RemoteGrid.Subscribe does) when even that loss is unacceptable.
func (m *MuxClient) OpenStreamV3(ctx context.Context, op string, enc func(b []byte) []byte) (*MuxStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, AsError(err)
	}
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return nil, err
	}
	m.nextID++
	id := m.nextID
	ms := &MuxStream{m: m, id: id, notify: make(chan struct{}, 1)}
	m.streams[id] = ms
	m.mu.Unlock()
	pb := getBuf()
	b, err := appendCallHeader(pb.b, v3Open, id, op, 0, ctx)
	if err == nil {
		if enc != nil {
			b = enc(b)
		}
		pb.b = b[:0]
		err = m.writeFrame(b)
	}
	putBuf(pb)
	if err != nil {
		m.dropStream(id)
		return nil, err
	}
	// The handshake: the first frame is the ack, or an end frame carrying
	// the setup error.
	reply, nerr := ms.next(ctx.Done())
	if nerr != nil {
		if errors.Is(nerr, errStreamWaitCanceled) {
			ms.Cancel()
			ms.abandon()
			return nil, Errf(AsError(ctx.Err()).Code, "op %q: %v", op, ctx.Err())
		}
		return nil, m.connErr()
	}
	if reply.kind == v3End {
		reply.release()
		if reply.flags&v3FlagError != 0 {
			if reply.flags&v3FlagJSON != 0 {
				return nil, &noBinaryCodecError{err: reply.err()}
			}
			return nil, reply.err()
		}
		return nil, Errf(CodeProtocol, "op %q: stream ended before it was acknowledged", op)
	}
	reply.release()
	if reply.kind != v3Ack {
		ms.abandon()
		return nil, Errf(CodeProtocol, "op %q: expected stream ack, got frame kind %d", op, reply.kind)
	}
	return ms, nil
}

// dropStream removes a stream registration that never acknowledged.
func (m *MuxClient) dropStream(id uint64) {
	m.mu.Lock()
	delete(m.streams, id)
	m.mu.Unlock()
}

// abandon releases everything queued and marks the stream so frames
// still in flight are released on arrival — the reader gave up.
func (s *MuxStream) abandon() {
	s.qMu.Lock()
	for i := s.qHead; i < len(s.q); i++ {
		s.q[i].release()
	}
	s.q, s.qHead = nil, 0
	s.abandoned = true
	s.qMu.Unlock()
}

// Recv waits for the next event frame and hands its flags and body to
// handle (the body is pooled and only valid during the callback). It
// returns io.EOF on a clean end of stream, the server's structured error
// on a failed one, and the connection error if the connection died.
func (s *MuxStream) Recv(handle func(flags byte, body []byte) error) error {
	reply, err := s.next(nil)
	if err != nil {
		return err
	}
	defer reply.release()
	switch reply.kind {
	case v3Event:
		var body []byte
		if reply.body != nil {
			body = reply.body.b
		}
		return handle(reply.flags, body)
	case v3End:
		if reply.flags&v3FlagError != 0 {
			return reply.err()
		}
		return io.EOF
	default:
		return Errf(CodeProtocol, "transport: unexpected frame kind %d on open stream", reply.kind)
	}
}

// Cancel asks the server to stop the stream; the server detaches its
// sources and sends the end frame, which Recv observes. Idempotent.
func (s *MuxStream) Cancel() error {
	s.cancelMu.Lock()
	defer s.cancelMu.Unlock()
	if s.canceled {
		return nil
	}
	s.canceled = true
	pb := getBuf()
	b := append(pb.b, v3Cancel)
	b = AppendUvarint(b, s.id)
	pb.b = b[:0]
	err := s.m.writeFrame(b)
	putBuf(pb)
	return err
}

// Close closes the underlying connection (the abrupt teardown; prefer
// Cancel followed by draining Recv for a clean one).
func (m *MuxClient) Close() error { return m.conn.Close() }

// Addr returns the remote address the client is connected to.
func (m *MuxClient) Addr() string {
	if a := m.conn.RemoteAddr(); a != nil {
		return a.String()
	}
	return fmt.Sprintf("%p", m.conn)
}
