package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"time"
)

// This file is the typed v2 protocol. A v2 frame is the same
// length-prefixed JSON envelope as v1, with "v":2, a typed JSON body in
// place of the string params/payload, a structured error code on
// failure, and the client's remaining context budget propagated as
// "timeout_ms" so the server can honor the caller's deadline. Servers
// answer v1 frames (no "v" field) with the v1 Response shape forever;
// the two generations share one op namespace and one connection format.

// Code classifies a v2 failure so clients can react programmatically
// (and CLI tools can map it to an exit status).
type Code string

// The v2 error codes.
const (
	// CodeBadRequest: the request body did not decode into the op's
	// request type.
	CodeBadRequest Code = "bad_request"
	// CodeUnknownOp: no handler is registered for the op (see the
	// "ops.list" introspection op for the registered names).
	CodeUnknownOp Code = "unknown_op"
	// CodeParse: a query expression failed to parse (LDAP filter, SQL,
	// ClassAd constraint).
	CodeParse Code = "parse_error"
	// CodeExec: the handler ran and failed.
	CodeExec Code = "exec_error"
	// CodeUnavailable: the target system or component is not deployed on
	// this server.
	CodeUnavailable Code = "unavailable"
	// CodeDeadline: the caller's deadline expired before the handler
	// finished (or before it started).
	CodeDeadline Code = "deadline_exceeded"
	// CodeCanceled: the caller cancelled the request (context.Canceled,
	// not a deadline).
	CodeCanceled Code = "canceled"
	// CodeOverloaded: the server's admission control shed the request —
	// it was over the concurrency limit and the wait queue was full (or
	// the queue wait timed out). The request did no work; a retry after
	// backoff is safe for idempotent ops.
	CodeOverloaded Code = "overloaded"
	// CodeProtocol: the peer does not speak the v2 protocol (a v1-only
	// server answered a v2 frame).
	CodeProtocol Code = "protocol_mismatch"
	// CodeDegraded: a federation aggregator could not assemble a complete
	// answer — every branch failed, or one did under the fail-fast
	// policy. The message names the failed branches; under best-effort a
	// partial answer is returned as data instead (ResultSet.Partial with
	// per-branch metadata), not as this error. The aggregator already
	// retried within its branch budgets, so blind client retries are not
	// useful; re-query when the tree heals (see ClientStats breaker
	// state).
	CodeDegraded Code = "degraded"
	// CodeInternal: the server failed to encode its own response.
	CodeInternal Code = "internal"
)

// Error is a structured v2 failure.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return fmt.Sprintf("%s [%s]", e.Message, e.Code) }

// Is makes errors.Is match structured errors by code: a target *Error
// with an empty Message matches any error carrying the same Code, so a
// package can export one canonical instance per failure class (e.g.
// gridmon.ErrOverloaded) and callers write errors.Is(err, that) instead
// of comparing codes by hand. A target with a Message requires an exact
// match of both fields.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	if !ok {
		return false
	}
	return e.Code == t.Code && (t.Message == "" || t.Message == e.Message)
}

// Errf builds a coded error.
func Errf(code Code, format string, args ...interface{}) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// ErrorCode extracts the structured code from err, defaulting to
// CodeExec for plain errors and CodeDeadline for context expiry.
func ErrorCode(err error) Code { return AsError(err).Code }

// AsError coerces any error to a structured *Error: structured errors
// pass through; context expiry and socket-deadline timeouts (the form a
// client's armed conn deadline surfaces as) map to CodeDeadline;
// everything else to CodeExec. A nil error yields a zero-code *Error,
// so ErrorCode(nil) == "" rather than panicking.
func AsError(err error) *Error {
	if err == nil {
		return &Error{}
	}
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	if errors.Is(err, context.Canceled) {
		return &Error{Code: CodeCanceled, Message: err.Error()}
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return &Error{Code: CodeDeadline, Message: err.Error()}
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return &Error{Code: CodeDeadline, Message: err.Error()}
	}
	return &Error{Code: CodeExec, Message: err.Error()}
}

// requestFrame is the on-wire superset of the v1 and v2 request shapes.
type requestFrame struct {
	V  int    `json:"v,omitempty"`
	Op string `json:"op"`
	// v1 fields.
	Params map[string]string `json:"params,omitempty"`
	// v2 fields.
	Body          json.RawMessage `json:"body,omitempty"`
	TimeoutMillis int64           `json:"timeout_ms,omitempty"`
	// Stream marks a stream-open request (see stream.go).
	Stream bool `json:"stream,omitempty"`
}

// responseFrame is the on-wire superset of the v1 and v2 response
// shapes. For a v1 request only ok/error/payload are populated, so the
// bytes on the wire are exactly the v1 Response encoding.
type responseFrame struct {
	V     int    `json:"v,omitempty"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// v1 field.
	Payload string `json:"payload,omitempty"`
	// v2 fields.
	Code Code            `json:"code,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
	// Streaming fields: Stream marks ack/event/end frames of an open
	// stream; End marks its final frame (see stream.go).
	Stream bool `json:"stream,omitempty"`
	End    bool `json:"end,omitempty"`
}

// rawV2Handler is the type-erased form a registered v2 handler is stored
// in: body bytes in, body bytes or structured error out.
type rawV2Handler func(ctx context.Context, body json.RawMessage) (json.RawMessage, *Error)

// Handle registers a typed v2 handler for op on s, replacing any
// previous one. The request body is decoded into Req, the handler's
// Resp is encoded as the response body, and a returned error becomes a
// structured error frame (keeping its Code when it is a *Error). The
// context carries the client's propagated deadline, when it sent one.
func Handle[Req, Resp any](s *Server, op string, fn func(context.Context, Req) (Resp, error)) {
	raw := func(ctx context.Context, body json.RawMessage) (json.RawMessage, *Error) {
		var req Req
		if len(body) > 0 {
			//gridmon:nolint wirecode v2 request bodies are JSON by definition
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, Errf(CodeBadRequest, "op %q: decoding request: %v", op, err)
			}
		}
		resp, err := fn(ctx, req)
		if err != nil {
			return nil, AsError(err)
		}
		//gridmon:nolint wirecode v2 response bodies are JSON by definition
		out, err := json.Marshal(resp)
		if err != nil {
			return nil, Errf(CodeInternal, "op %q: encoding response: %v", op, err)
		}
		return out, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v2[op] = raw
}

// OpsList is the response of the built-in "ops.list" introspection op:
// every registered op name (v1 and v2), sorted.
type OpsList struct {
	Ops []string `json:"ops"`
}

// dispatchV2 runs the v2 handler for one request, honoring the client's
// propagated deadline and the server's concurrency policy.
func (s *Server) dispatchV2(req requestFrame) responseFrame {
	s.mu.Lock()
	h := s.v2[req.Op]
	s.mu.Unlock()
	if h == nil {
		return v2Failure(Errf(CodeUnknownOp, "unknown op %q (try ops.list)", req.Op))
	}
	//gridmon:nolint ctxflow server-side root: the caller's deadline arrives on the wire and is re-armed via WithTimeout below
	ctx := context.Background()
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}
	if !s.Concurrent {
		s.callMu.Lock()
		defer s.callMu.Unlock()
	}
	// The deadline may already have passed while queued behind other
	// calls; don't start work the client has given up on.
	if err := ctx.Err(); err != nil {
		return v2Failure(Errf(CodeDeadline, "op %q: %v", req.Op, err))
	}
	body, herr := h(ctx, req.Body)
	if herr != nil {
		return v2Failure(herr)
	}
	return responseFrame{V: 2, OK: true, Body: body}
}

func v2Failure(e *Error) responseFrame {
	return responseFrame{V: 2, Error: e.Message, Code: e.Code}
}

// CallV2 performs one typed request/response exchange: req is encoded as
// the request body and the response body is decoded into resp (which may
// be nil to discard it). The remaining budget of ctx, when it has a
// deadline, is propagated to the server and also bounds the socket I/O;
// cancelling ctx likewise unblocks the call. After a deadline or
// cancellation failure the connection may hold a half-read frame, so
// callers should Close and re-Dial. Server failures are returned as
// *Error with their structured code; a server that only speaks the v1
// protocol fails loudly with CodeProtocol rather than mis-executing the
// request.
func (c *Client) CallV2(ctx context.Context, op string, req, resp interface{}) error {
	frame := requestFrame{V: 2, Op: op}
	if req != nil {
		//gridmon:nolint wirecode CallV2 speaks the JSON wire generation
		b, err := json.Marshal(req)
		if err != nil {
			return Errf(CodeBadRequest, "op %q: encoding request: %v", op, err)
		}
		frame.Body = b
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.streaming {
		return Errf(CodeBadRequest, "op %q: connection carries an open stream", op)
	}
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			return Errf(CodeDeadline, "op %q: %v", op, context.DeadlineExceeded)
		}
		frame.TimeoutMillis = int64(remaining / time.Millisecond)
		if frame.TimeoutMillis == 0 {
			frame.TimeoutMillis = 1
		}
	}
	defer c.guardConn(ctx)()
	if err := ctx.Err(); err != nil {
		return AsError(err)
	}
	if err := c.exchange(ctx, frame, op, resp); err != nil {
		// Report the caller's own cancellation/expiry in preference to
		// the i/o error it surfaced as.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Errf(AsError(ctxErr).Code, "op %q: %v", op, ctxErr)
		}
		return err
	}
	return nil
}

// guardConn bounds a blocking exchange by ctx, returning the cleanup
// to defer. A deadline arms the socket directly; any cancellable
// context — deadline or not — additionally gets a watcher that poisons
// the socket deadline the moment ctx is done, so an explicit cancel
// interrupts a blocked read even when a (later) deadline is also
// armed. The cleanup waits for the watcher to exit before clearing the
// deadline, so a cancel racing the call's completion cannot leave the
// connection poisoned. Callers hold c.mu.
func (c *Client) guardConn(ctx context.Context) func() {
	if dl, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(dl)
	}
	done := ctx.Done()
	if done == nil {
		return func() { c.conn.SetDeadline(time.Time{}) }
	}
	stop := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-done:
			c.conn.SetDeadline(time.Unix(1, 0))
		case <-stop:
		}
	}()
	return func() {
		close(stop)
		<-exited
		c.conn.SetDeadline(time.Time{})
	}
}

// exchange writes one v2 frame and decodes the reply. Callers hold c.mu.
func (c *Client) exchange(_ context.Context, frame requestFrame, op string, resp interface{}) error {
	if err := WriteFrame(c.w, frame); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	var rf responseFrame
	if err := ReadFrameBuf(c.r, &c.buf, &rf); err != nil {
		return err
	}
	if rf.V < 2 {
		return Errf(CodeProtocol,
			"op %q: server answered with the v1 protocol (upgrade the server or use a v1 Call)", op)
	}
	if !rf.OK {
		code := rf.Code
		if code == "" {
			code = CodeExec
		}
		return &Error{Code: code, Message: rf.Error}
	}
	if resp != nil && len(rf.Body) > 0 {
		//gridmon:nolint wirecode CallV2 speaks the JSON wire generation
		if err := json.Unmarshal(rf.Body, resp); err != nil {
			return Errf(CodeInternal, "op %q: decoding response: %v", op, err)
		}
	}
	return nil
}
