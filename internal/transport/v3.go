package transport

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"sync"
	"time"
)

// This file is the server half of the v3 wire format: length-prefixed
// binary frames with pipelining. A v3 client opens its connection with a
// 4-byte magic; the server peeks it at accept time and switches this
// connection to the binary loop, while any other first bytes flow into
// the untouched v1/v2 JSON loop — so negotiation is decided once per
// connection and the JSON generations keep answering bit-identically.
//
// Every v3 request frame carries a client-assigned request id. The
// server dispatches calls concurrently (bounded by maxPipeline per
// connection) and writes each response as its handler completes —
// completion order, not arrival order — so one slow call no longer
// blocks the line. The client demultiplexes by id (see mux.go).
//
// Request payload layout (after the 4-byte length envelope):
//
//	byte    kind         1=call  2=stream open  3=stream cancel
//	uvarint id
//	-- cancel frames end here --
//	string  op           uvarint length + bytes
//	byte    flags        bit0: body is JSON
//	uvarint timeout_ms   0 = no deadline
//	...     body         the rest of the frame, opaque to this layer
//
// Response payload layout:
//
//	byte    kind         1=reply  2=stream ack  3=stream event  4=stream end
//	uvarint id
//	byte    flags        bit0: body is JSON   bit1: error
//	-- on error: string code, string message (no body) --
//	...     body         the rest of the frame
//
// Bodies are opaque here: ops with a registered binary handler
// (HandleV3/HandleStreamV3) decode and encode them with the codec
// primitives; everything else bridges to the op's registered v2 JSON
// handler with the JSON flag set, so every op is reachable — and
// pipelined — over a v3 connection even before it grows a binary codec.

// v3Magic is the preamble a v3 client opens its connection with. Read as
// a v1/v2 big-endian length prefix it is 1.19 GiB — far beyond MaxFrame —
// so no JSON client can ever begin a connection with these bytes.
var v3Magic = [4]byte{'G', 'M', '3', 0x01}

// Request frame kinds.
const (
	v3Call   = 1
	v3Open   = 2
	v3Cancel = 3
)

// Response frame kinds.
const (
	v3Reply = 1
	v3Ack   = 2
	v3Event = 3
	v3End   = 4
)

// Frame flags.
const (
	v3FlagJSON  = 1 << 0
	v3FlagError = 1 << 1
)

// DefaultMaxPipeline bounds how many calls one v3 connection may have
// dispatched concurrently on the server; past it the read loop stops
// picking up frames, which backpressures the client through TCP.
const DefaultMaxPipeline = 64

// V3Handler answers one binary-bodied v3 call: body is the request
// payload (a view valid only for the duration of the call), and the
// response payload is appended to out (pooled by the server) and
// returned. A returned *Error reaches the client with its code intact.
type V3Handler func(ctx context.Context, body []byte, out []byte) ([]byte, *Error)

// V3Send writes one binary event frame on an open v3 stream: fill
// appends the frame body to the buffer it is handed (pooled by the
// server) and returns it.
type V3Send func(fill func(b []byte) []byte) error

// V3StreamFunc pumps one open v3 stream, calling send once per event
// frame; returning ends the stream (nil or a context cancellation end it
// cleanly, anything else reaches the client as a structured end frame).
type V3StreamFunc func(send V3Send) error

// v3StreamOpen is the stored form of a binary stream handler.
type v3StreamOpen func(ctx context.Context, body []byte) (V3StreamFunc, *Error)

// HandleV3 registers a binary v3 handler for op, replacing any previous
// one. Ops without one are still served over v3 through the JSON bridge;
// a binary handler removes the JSON round-trip from the op's hot path.
func (s *Server) HandleV3(op string, h V3Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v3[op] = h
}

// HandleStreamV3 registers a binary v3 stream handler for op, replacing
// any previous one. open validates the request and attaches sources; the
// returned V3StreamFunc runs for the stream's lifetime with ctx
// cancelled when the client cancels or the connection drops.
func (s *Server) HandleStreamV3(op string, open func(ctx context.Context, body []byte) (V3StreamFunc, *Error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v3streams[op] = open
}

// v3ConnWriter serializes response frames onto one v3 connection: header
// and body are written as separate sections under the lock, so handlers
// build bodies in their own buffers without a final copy.
type v3ConnWriter struct {
	mu sync.Mutex
	w  *bufio.Writer
}

// writeSplit writes one frame whose payload is hdr followed by body.
func (cw *v3ConnWriter) writeSplit(hdr, body []byte) error {
	total := len(hdr) + len(body)
	if total > MaxFrame {
		return Errf(CodeInternal, "transport: v3 frame of %d bytes exceeds limit", total)
	}
	var l [4]byte
	l[0] = byte(total >> 24)
	l[1] = byte(total >> 16)
	l[2] = byte(total >> 8)
	l[3] = byte(total)
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if _, err := cw.w.Write(l[:]); err != nil {
		return err
	}
	if _, err := cw.w.Write(hdr); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := cw.w.Write(body); err != nil {
			return err
		}
	}
	return cw.w.Flush()
}

// appendV3RespHeader appends a response frame header for id.
func appendV3RespHeader(b []byte, kind byte, id uint64, flags byte) []byte {
	b = append(b, kind)
	b = AppendUvarint(b, id)
	return append(b, flags)
}

// v3Error writes an error response frame for id. extra flags are OR'd
// into the frame's flag byte alongside the error bit: the JSON flag on
// an error frame marks "this op exists but only with a JSON body here",
// which the client turns into ErrNoBinaryCodec and a bridge retry.
func (cw *v3ConnWriter) v3Error(kind byte, id uint64, extra byte, e *Error) error {
	hdr := getBuf()
	defer putBuf(hdr)
	code := e.Code
	if code == "" {
		code = CodeExec
	}
	b := appendV3RespHeader(hdr.b, kind, id, v3FlagError|extra)
	b = AppendString(b, string(code))
	b = AppendString(b, e.Message)
	return cw.writeSplit(b, nil)
}

// serveConnV3 answers pipelined binary frames on one connection until it
// closes. The magic has already been consumed by serveConn.
func (s *Server) serveConnV3(conn net.Conn, r *bufio.Reader) {
	cw := &v3ConnWriter{w: bufio.NewWriter(conn)}
	// Dispatch goroutines must drain before the connection teardown
	// returns, so Server.Close keeps its contract of waiting out
	// in-flight handlers.
	var wg sync.WaitGroup
	defer wg.Wait()
	// Open streams by request id, for cancel routing; every one is
	// cancelled when the read loop exits, however it exits.
	var streamMu sync.Mutex
	streams := make(map[uint64]context.CancelFunc)
	defer func() {
		streamMu.Lock()
		for _, cancel := range streams {
			cancel()
		}
		streamMu.Unlock()
	}()
	sem := make(chan struct{}, DefaultMaxPipeline)
	var frameBuf []byte
	for {
		payload, err := readFrameInto(r, &frameBuf)
		if err != nil {
			return
		}
		d := NewDec(payload)
		kind := d.Byte()
		id := d.Uvarint()
		if kind == v3Cancel {
			if d.Err() != nil {
				return
			}
			streamMu.Lock()
			if cancel := streams[id]; cancel != nil {
				cancel()
			}
			streamMu.Unlock()
			continue
		}
		op := d.String()
		flags := d.Byte()
		timeoutMS := d.Uvarint()
		if d.Err() != nil || (kind != v3Call && kind != v3Open) {
			// A malformed frame means the two sides disagree about the
			// framing itself; nothing sensible can follow on this
			// connection.
			return
		}
		// The body aliases the read buffer, which the next loop iteration
		// reuses — copy it into a pooled buffer that the dispatch
		// goroutine owns and releases.
		pb := getBuf()
		pb.b = append(pb.b, d.Rest()...)
		if kind == v3Open {
			//gridmon:nolint ctxflow server-side stream root: the client cancels with a wire frame, which the cancel routing above turns into this ctx's cancel
			ctx, cancel := context.WithCancel(context.Background())
			streamMu.Lock()
			streams[id] = cancel
			streamMu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					streamMu.Lock()
					delete(streams, id)
					streamMu.Unlock()
					cancel()
				}()
				s.serveStreamV3(ctx, cw, id, op, flags, pb)
			}()
			continue
		}
		// Calls dispatch concurrently, each writing its own response as
		// it completes; sem bounds how far one connection can fan out.
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			s.dispatchV3(cw, id, op, flags, timeoutMS, pb)
		}()
	}
}

// dispatchV3 runs one v3 call — through the op's binary handler when it
// has one and the client sent a binary body, otherwise through the v2
// JSON bridge — and writes the response frame. It owns and releases pb.
func (s *Server) dispatchV3(cw *v3ConnWriter, id uint64, op string, flags byte, timeoutMS uint64, pb *wireBuf) {
	defer putBuf(pb)
	//gridmon:nolint ctxflow server-side root: the caller's deadline arrives on the wire and is re-armed via WithTimeout below
	ctx := context.Background()
	if timeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
		defer cancel()
	}
	s.mu.Lock()
	bh := s.v3[op]
	jh := s.v2[op]
	s.mu.Unlock()
	// A binary body must never reach the JSON bridge (the handler would
	// see garbage): when the op is only registered as JSON here, answer
	// with the JSON-flagged error that tells the client to retry through
	// the bridge.
	var useJSON bool
	switch {
	case flags&v3FlagJSON == 0 && bh != nil:
	case flags&v3FlagJSON == 0 && jh != nil:
		cw.v3Error(v3Reply, id, v3FlagJSON, Errf(CodeBadRequest, "op %q has no binary codec on this server (retry with a JSON body)", op))
		return
	case flags&v3FlagJSON != 0 && jh != nil:
		useJSON = true
	default:
		cw.v3Error(v3Reply, id, 0, Errf(CodeUnknownOp, "unknown op %q (try ops.list)", op))
		return
	}
	if !s.Concurrent {
		s.callMu.Lock()
		defer s.callMu.Unlock()
	}
	// The deadline may already have passed while queued; don't start
	// work the client has given up on.
	if err := ctx.Err(); err != nil {
		cw.v3Error(v3Reply, id, 0, Errf(CodeDeadline, "op %q: %v", op, err))
		return
	}
	out := getBuf()
	defer putBuf(out)
	var respFlags byte
	var body []byte
	var herr *Error
	if useJSON {
		var jbody json.RawMessage
		jbody, herr = jh(ctx, json.RawMessage(pb.b))
		body = jbody
		respFlags = v3FlagJSON
	} else {
		body, herr = bh(ctx, pb.b, out.b)
		if body != nil {
			// The handler may have grown the buffer; keep the grown
			// backing array when it returns to the pool.
			out.b = body[:0]
		}
	}
	if herr != nil {
		cw.v3Error(v3Reply, id, 0, herr)
		return
	}
	hdr := getBuf()
	defer putBuf(hdr)
	cw.writeSplit(appendV3RespHeader(hdr.b, v3Reply, id, respFlags), body)
}

// serveStreamV3 runs one v3 stream: ack, event frames, end frame. Unlike
// a v2 stream it does not own the connection — event frames interleave
// with other responses under the connection writer — so the client can
// keep calling while subscribed. It owns and releases pb.
func (s *Server) serveStreamV3(ctx context.Context, cw *v3ConnWriter, id uint64, op string, flags byte, pb *wireBuf) {
	s.mu.Lock()
	bo := s.v3streams[op]
	jo := s.streams[op]
	s.mu.Unlock()
	var run V3StreamFunc
	var herr *Error
	var herrFlags byte
	var respFlags byte
	switch {
	case flags&v3FlagJSON == 0 && bo != nil:
		run, herr = bo(ctx, pb.b)
	case flags&v3FlagJSON == 0 && jo != nil:
		// Same rule as dispatchV3: a binary body never bridges to JSON.
		herrFlags = v3FlagJSON
		herr = Errf(CodeBadRequest, "stream op %q has no binary codec on this server (retry with a JSON body)", op)
	case flags&v3FlagJSON != 0 && jo != nil:
		// The JSON bridge: open through the v2 stream handler and wrap
		// its send so each event rides a v3 event frame with a JSON body.
		respFlags = v3FlagJSON
		var jrun StreamFunc
		jrun, herr = jo(ctx, json.RawMessage(pb.b))
		if herr == nil {
			run = func(send V3Send) error {
				return jrun(func(v interface{}) error {
					//gridmon:nolint wirecode v2 JSON bridge: ops without a binary codec ride v3 frames with JSON bodies
					b, err := json.Marshal(v)
					if err != nil {
						return Errf(CodeInternal, "op %q: encoding event: %v", op, err)
					}
					return send(func(dst []byte) []byte { return append(dst, b...) })
				})
			}
		}
	default:
		herr = Errf(CodeUnknownOp, "no stream op %q registered (try ops.list)", op)
	}
	putBuf(pb)
	if herr != nil {
		cw.v3Error(v3End, id, herrFlags, herr)
		return
	}
	hdr := getBuf()
	if err := cw.writeSplit(appendV3RespHeader(hdr.b, v3Ack, id, 0), nil); err != nil {
		putBuf(hdr)
		return
	}
	putBuf(hdr)
	send := func(fill func(b []byte) []byte) error {
		if err := ctx.Err(); err != nil {
			return AsError(err)
		}
		fb := getBuf()
		defer putBuf(fb)
		b := appendV3RespHeader(fb.b, v3Event, id, respFlags)
		b = fill(b)
		return cw.writeSplit(b, nil)
	}
	err := run(send)
	if e := AsError(err); err != nil && e.Code != CodeCanceled && e.Code != CodeDeadline {
		cw.v3Error(v3End, id, 0, e)
		return
	}
	eb := getBuf()
	defer putBuf(eb)
	cw.writeSplit(appendV3RespHeader(eb.b, v3End, id, 0), nil)
}
