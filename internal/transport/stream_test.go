package transport

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"
)

type tick struct {
	N int `json:"n"`
}

// streamServer serves a "ticks" stream op: it emits req.N events then
// ends cleanly; with N < 0 it runs until cancelled, and with N == -99
// setup fails with a coded error.
func streamServer(t *testing.T) (addr string) {
	t.Helper()
	s := NewServer()
	HandleStream(s, "ticks", func(ctx context.Context, req tick) (StreamFunc, error) {
		if req.N == -99 {
			return nil, Errf(CodeUnavailable, "ticks are off today")
		}
		run := func(send func(v interface{}) error) error {
			for i := 0; req.N < 0 || i < req.N; i++ {
				select {
				case <-ctx.Done():
					return ctx.Err()
				default:
				}
				if err := send(tick{N: i}); err != nil {
					return err
				}
				if req.N < 0 {
					time.Sleep(time.Millisecond)
				}
			}
			return nil
		}
		return run, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return addr
}

// TestStreamDelivery: a finite stream delivers every event frame in
// order and ends with io.EOF.
func TestStreamDelivery(t *testing.T) {
	c, err := Dial(streamServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs, err := c.StreamV2(context.Background(), "ticks", tick{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		var tk tick
		if err := cs.Recv(&tk); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if tk.N != i {
			t.Fatalf("recv %d: got %d", i, tk.N)
		}
	}
	if err := cs.Recv(nil); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

// TestStreamSetupError: a failed open reaches the client as the
// StreamV2 error, with its structured code intact.
func TestStreamSetupError(t *testing.T) {
	c, err := Dial(streamServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.StreamV2(context.Background(), "ticks", tick{N: -99})
	if ErrorCode(err) != CodeUnavailable {
		t.Fatalf("setup error = %v, want %s", err, CodeUnavailable)
	}
	// The connection survives a refused stream.
	var ol OpsList
	if err := c.CallV2(context.Background(), "ops.list", nil, &ol); err != nil {
		t.Fatalf("call after refused stream: %v", err)
	}
}

// TestStreamCancelAndReuse: the client cancels an endless stream, the
// server confirms with an end frame, and the connection then serves
// request/response calls again.
func TestStreamCancelAndReuse(t *testing.T) {
	c, err := Dial(streamServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs, err := c.StreamV2(context.Background(), "ticks", tick{N: -1})
	if err != nil {
		t.Fatal(err)
	}
	var tk tick
	if err := cs.Recv(&tk); err != nil {
		t.Fatal(err)
	}
	// A concurrent request/response call must refuse rather than corrupt
	// the stream's framing.
	if err := c.CallV2(context.Background(), "ops.list", nil, nil); ErrorCode(err) != CodeBadRequest {
		t.Fatalf("call during stream = %v, want %s", err, CodeBadRequest)
	}
	if err := cs.Cancel(); err != nil {
		t.Fatal(err)
	}
	for {
		if err := cs.Recv(nil); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("post-cancel recv = %v, want io.EOF", err)
			}
			break
		}
	}
	var ol OpsList
	if err := c.CallV2(context.Background(), "ops.list", nil, &ol); err != nil {
		t.Fatalf("call after cancelled stream: %v", err)
	}
	found := false
	for _, op := range ol.Ops {
		if op == "ticks" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ops.list after stream misses the stream op: %v", ol.Ops)
	}
}

// TestStreamOpMisuse: stream ops demand stream requests and vice versa,
// with structured codes either way.
func TestStreamOpMisuse(t *testing.T) {
	c, err := Dial(streamServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CallV2(context.Background(), "ticks", tick{N: 1}, nil); ErrorCode(err) != CodeBadRequest {
		t.Fatalf("plain call on stream op = %v, want %s", err, CodeBadRequest)
	}
	if _, err := c.StreamV2(context.Background(), "ops.list", nil); ErrorCode(err) != CodeUnknownOp {
		t.Fatalf("stream open on plain op = %v, want %s", err, CodeUnknownOp)
	}
}

// TestStreamReadFailureReleasesClient: a mid-stream connection failure
// ends the stream and releases the client from stream mode, so later
// calls surface the real connection error instead of a stale
// "connection carries an open stream" refusal.
func TestStreamReadFailureReleasesClient(t *testing.T) {
	s := NewServer()
	HandleStream(s, "forever", func(ctx context.Context, _ struct{}) (StreamFunc, error) {
		return func(send func(v interface{}) error) error {
			<-ctx.Done()
			return ctx.Err()
		}, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs, err := c.StreamV2(context.Background(), "forever", nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Close() // drops the connection mid-stream
	if err := cs.Recv(nil); err == nil {
		t.Fatal("Recv survived a dropped connection")
	}
	err = c.CallV2(context.Background(), "ops.list", nil, nil)
	if err == nil {
		t.Fatal("call on a dead connection succeeded")
	}
	if e := AsError(err); e.Code == CodeBadRequest {
		t.Fatalf("call after failed stream still refused as streaming: %v", err)
	}
}

// TestServerCloseTerminatesStreams: closing the server tears down open
// streaming connections rather than waiting on them forever.
func TestServerCloseTerminatesStreams(t *testing.T) {
	s := NewServer()
	HandleStream(s, "forever", func(ctx context.Context, _ struct{}) (StreamFunc, error) {
		return func(send func(v interface{}) error) error {
			<-ctx.Done()
			return ctx.Err()
		}, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.StreamV2(context.Background(), "forever", nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close hung on an open stream")
	}
}
