package transport

import (
	"math"
	"testing"
)

// TestCodecRoundTrip: every primitive survives append → decode, in
// sequence, with the decoder consuming exactly what was written.
func TestCodecRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 1<<60)
	b = AppendVarint(b, -42)
	b = AppendVarint(b, math.MaxInt64)
	b = AppendFloat64(b, 3.5)
	b = AppendFloat64(b, math.Inf(-1))
	b = AppendString(b, "")
	b = AppendString(b, "grid-α")
	b = AppendBytes(b, []byte{0, 1, 2})
	b = append(b, 0x7f)

	d := NewDec(b)
	if v := d.Uvarint(); v != 0 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := d.Uvarint(); v != 1<<60 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := d.Varint(); v != -42 {
		t.Fatalf("varint = %d", v)
	}
	if v := d.Varint(); v != math.MaxInt64 {
		t.Fatalf("varint = %d", v)
	}
	if v := d.Float64(); v != 3.5 {
		t.Fatalf("float = %v", v)
	}
	if v := d.Float64(); !math.IsInf(v, -1) {
		t.Fatalf("float = %v", v)
	}
	if v := d.String(); v != "" {
		t.Fatalf("string = %q", v)
	}
	if v := d.String(); v != "grid-α" {
		t.Fatalf("string = %q", v)
	}
	if v := d.Bytes(); len(v) != 3 || v[2] != 2 {
		t.Fatalf("bytes = %v", v)
	}
	if v := d.Byte(); v != 0x7f {
		t.Fatalf("byte = %v", v)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("%d bytes left over", d.Len())
	}
}

// TestCodecTruncation: reading past the end sets the sticky error and
// every later read stays zero-valued — no panics, no garbage.
func TestCodecTruncation(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"cut varint":       {0x80},
		"cut float":        {1, 2, 3},
		"string past end":  AppendUvarint(nil, 100),
		"bytes past end":   append(AppendUvarint(nil, 5), 1, 2),
		"huge string size": {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	}
	for name, payload := range cases {
		d := NewDec(payload)
		switch name {
		case "cut float":
			d.Float64()
		case "cut varint":
			d.Uvarint()
		case "bytes past end":
			d.Bytes()
		default:
			_ = d.String() // vet: String() results must be used
		}
		if d.Err() == nil {
			t.Errorf("%s: no error", name)
		}
		if ErrorCode(d.Err()) != CodeBadRequest {
			t.Errorf("%s: code = %s", name, ErrorCode(d.Err()))
		}
		// Sticky: subsequent reads are inert.
		if v := d.Uvarint(); v != 0 {
			t.Errorf("%s: read after error = %d", name, v)
		}
	}
}

// TestCodecStringReuse: decoding a string equal to the one already held
// allocates nothing; a different string replaces it.
func TestCodecStringReuse(t *testing.T) {
	payload := AppendString(nil, "stable-key")
	held := "stable-key"
	allocs := testing.AllocsPerRun(100, func() {
		d := NewDec(payload)
		held = d.StringReuse(held)
	})
	if allocs != 0 {
		t.Errorf("StringReuse on equal value: %.1f allocs/op", allocs)
	}
	d := NewDec(AppendString(nil, "fresh"))
	if got := d.StringReuse(held); got != "fresh" {
		t.Fatalf("StringReuse = %q", got)
	}
}

// TestCodecSeek: Off/Seek support two-pass decodes; seeking back
// replays the same bytes.
func TestCodecSeek(t *testing.T) {
	b := AppendUvarint(nil, 7)
	b = AppendString(b, "x")
	d := NewDec(b)
	mark := d.Off()
	if d.Uvarint() != 7 {
		t.Fatal("first pass")
	}
	d.Seek(mark)
	if d.Uvarint() != 7 || d.String() != "x" {
		t.Fatal("second pass")
	}
}
