// Package transport provides the live-mode wire layer: length-prefixed
// JSON messages over TCP (or any net.Conn), with an op-dispatch server
// speaking two protocol generations over one connection format. The
// legacy v1 exchange is Request{Op, Params} to Response{OK, Error,
// Payload} with string payloads; the typed v2 exchange (see v2.go)
// carries JSON request/response bodies for generic per-op handlers
// registered with the package-level Handle function, returns structured
// error codes, and propagates the client's context deadline to the
// server. The monitoring services' engines are pure request/response
// logic; this package makes them network services a real client can
// query, complementing the simulated testbed used for the experiments.
package transport

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
)

// MaxFrame bounds a single message (16 MiB), protecting servers from
// runaway payloads.
const MaxFrame = 16 << 20

// Request is a generic service request.
type Request struct {
	// Op selects the operation, e.g. "mds.query" or "hawkeye.machines".
	Op string `json:"op"`
	// Params carries operation arguments (filter strings, SQL, ...).
	Params map[string]string `json:"params,omitempty"`
}

// Response is a generic service response.
type Response struct {
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	Payload string `json:"payload,omitempty"`
}

// WriteFrame writes one length-prefixed JSON message.
func WriteFrame(w io.Writer, v interface{}) error {
	//gridmon:nolint wirecode v1/v2 frames carry JSON payloads; v3 bypasses this path
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(data) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(data))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadFrame reads one length-prefixed JSON message into v.
func ReadFrame(r io.Reader, v interface{}) error {
	var buf []byte
	return ReadFrameBuf(r, &buf, v)
}

// ReadFrameBuf is ReadFrame with a caller-owned payload buffer: the
// frame is read into *buf, growing it only when a frame exceeds its
// capacity, so a long-lived loop (the server's per-connection read loop,
// a client issuing many calls) stops paying one allocation per frame.
// json.Unmarshal copies what it keeps, so the buffer is free for reuse
// as soon as the call returns.
func ReadFrameBuf(r io.Reader, buf *[]byte, v interface{}) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	// Bounds-check before any int conversion: on 32-bit platforms a
	// length above MaxInt32 would wrap negative and sail past the guard.
	if binary.BigEndian.Uint32(hdr[:]) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", binary.BigEndian.Uint32(hdr[:]))
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		return err
	}
	//gridmon:nolint wirecode v1/v2 frames carry JSON payloads; v3 bypasses this path
	return json.Unmarshal(b, v)
}

// Handler answers one request. Handlers must be safe for concurrent use;
// the Server serializes calls per default unless Concurrent is set.
type Handler func(Request) Response

// Server dispatches framed requests to registered op handlers. One op
// namespace serves both protocol generations: v1 string-payload handlers
// (Handle method) and typed v2 handlers (the package-level generic
// Handle function); each incoming frame is routed by its "v" field.
type Server struct {
	mu        sync.Mutex
	handlers  map[string]Handler
	v2        map[string]rawV2Handler
	streams   map[string]rawStreamHandler
	v3        map[string]V3Handler
	v3streams map[string]v3StreamOpen
	ln        net.Listener
	wg        sync.WaitGroup
	conns     map[net.Conn]bool
	closed    bool
	// Concurrent allows handlers to run in parallel; by default calls
	// are serialized, matching the single-backend daemons being modeled.
	Concurrent bool
	callMu     sync.Mutex
	// WrapConn, when non-nil, wraps every accepted connection before the
	// server reads from it — the fault-injection seam mirroring
	// storage's Options.WrapWAL: the chaos tests install a faultconn
	// wrapper here to inject latency, stalls, partial writes and
	// mid-frame resets between real clients and real handlers. Set it
	// before Listen; production servers leave it nil.
	WrapConn func(net.Conn) net.Conn
}

// NewServer returns a server with only the built-in "ops.list"
// introspection op registered.
func NewServer() *Server {
	s := &Server{
		handlers:  make(map[string]Handler),
		v2:        make(map[string]rawV2Handler),
		streams:   make(map[string]rawStreamHandler),
		v3:        make(map[string]V3Handler),
		v3streams: make(map[string]v3StreamOpen),
		conns:     make(map[net.Conn]bool),
	}
	Handle(s, "ops.list", func(context.Context, struct{}) (OpsList, error) {
		return OpsList{Ops: s.Ops()}, nil
	})
	return s
}

// Handle registers a handler for op, replacing any previous one.
func (s *Server) Handle(op string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[op] = h
}

// Ops lists registered operation names across both protocol
// generations, sorted.
func (s *Server) Ops() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool, len(s.handlers)+len(s.v2)+len(s.streams))
	out := make([]string, 0, len(s.handlers)+len(s.v2)+len(s.streams))
	for _, ops := range []map[string]bool{opNames(s.handlers), opNames(s.v2), opNames(s.streams), opNames(s.v3), opNames(s.v3streams)} {
		for op := range ops {
			if !seen[op] {
				seen[op] = true
				out = append(out, op)
			}
		}
	}
	sort.Strings(out)
	return out
}

// opNames projects a handler map to its op-name set (Ops is cold path;
// the copies keep it generic over the four handler map types).
func opNames[T any](m map[string]T) map[string]bool {
	out := make(map[string]bool, len(m))
	for op := range m {
		out[op] = true
	}
	return out
}

// dispatch runs the handler for one request.
func (s *Server) dispatch(req Request) Response {
	s.mu.Lock()
	h := s.handlers[req.Op]
	s.mu.Unlock()
	if h == nil {
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
	if !s.Concurrent {
		s.callMu.Lock()
		defer s.callMu.Unlock()
	}
	return h(req)
}

// Listen starts accepting connections on addr ("127.0.0.1:0" picks a free
// port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if s.WrapConn != nil {
			// The wrapped conn is what gets stored and closed, so a
			// wrapper's own teardown (releasing a stall, say) runs when
			// the server shuts the connection down.
			conn = s.WrapConn(conn)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn answers requests on one connection until it closes. The
// protocol generation is negotiated once, at accept time: a connection
// opening with the v3 magic bytes takes the binary pipelined loop (see
// v3.go); anything else flows into the JSON loop below, where frames
// carrying "v":2 take the typed v2 path and everything else is served as
// a v1 request and answered in the v1 Response shape — so v1 and v2
// clients keep receiving bit-identical bytes.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	if magic, err := r.Peek(4); err == nil && bytes.Equal(magic, v3Magic[:]) {
		r.Discard(4)
		s.serveConnV3(conn, r)
		return
	}
	w := bufio.NewWriter(conn)
	// One grow-only frame buffer per connection: steady request traffic
	// reads every frame into the same backing array instead of
	// allocating per frame (see BenchmarkReadFrame/BenchmarkReadFrameBuf).
	var frameBuf []byte
	for {
		var req requestFrame
		if err := ReadFrameBuf(r, &frameBuf, &req); err != nil {
			return
		}
		var resp responseFrame
		if req.V >= 2 {
			s.mu.Lock()
			sh := s.streams[req.Op]
			s.mu.Unlock()
			switch {
			case sh != nil && req.Stream:
				if !s.serveStream(r, w, req, sh) {
					return
				}
				continue
			case sh != nil:
				resp = v2Failure(Errf(CodeBadRequest,
					"op %q is a streaming op (open it with a stream request)", req.Op))
			case req.Stream:
				resp = v2Failure(Errf(CodeUnknownOp,
					"no stream op %q registered (try ops.list)", req.Op))
			default:
				resp = s.dispatchV2(req)
			}
		} else {
			v1 := s.dispatch(Request{Op: req.Op, Params: req.Params})
			resp = responseFrame{OK: v1.OK, Error: v1.Error, Payload: v1.Payload}
		}
		if err := WriteFrame(w, resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Close stops the listener, closes every open connection (terminating
// any streams they carry), and waits for in-flight handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// Client is a connection to a transport server. It is safe for concurrent
// use; calls are serialized over the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	// buf is the grow-only response-frame buffer, reused across calls
	// (guarded by mu, like the rest of the exchange).
	buf []byte
	// streaming marks the connection as dedicated to an open stream
	// (see StreamV2); request/response calls fail while it is set.
	streaming bool
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	//gridmon:nolint ctxflow compat shim around DialContext for pre-context callers
	return DialContext(context.Background(), addr)
}

// DialContext connects to a server, honoring ctx's deadline and
// cancellation during the TCP connect.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection as a Client. It is the
// client-side half of the fault-injection seam: callers that need to
// interpose on the wire (see internal/faultconn) dial themselves, wrap
// the conn, and hand it here; Dial/DialContext are equivalent to
// NewClient over a plain TCP connect.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// Call performs one request/response exchange.
func (c *Client) Call(op string, params map[string]string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.streaming {
		return "", fmt.Errorf("transport: connection carries an open stream")
	}
	if err := WriteFrame(c.w, Request{Op: op, Params: params}); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	var resp Response
	if err := ReadFrameBuf(c.r, &c.buf, &resp); err != nil {
		return "", err
	}
	if !resp.OK {
		return "", errors.New(resp.Error)
	}
	return resp.Payload, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
