package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// This file is the binary codec layer under the v3 wire format (see
// v3.go): append-style encoders that extend a caller-owned []byte, a
// sticky-error decoder that reads values back out of a frame without
// copying, and a pool of frame buffers so steady-state traffic encodes
// and decodes without allocating. The primitives are deliberately dumb —
// uvarints, length-prefixed strings, fixed 8-byte floats — the typed
// record section for ResultSet/Event payloads is composed from them by
// the root package, which owns those types.

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v in zig-zag varint encoding.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendFloat64 appends f as 8 fixed little-endian bytes (IEEE 754 bits).
func AppendFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendString appends s length-prefixed (uvarint length, then bytes).
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends p length-prefixed, like AppendString.
func AppendBytes(b []byte, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// errMalformed is the one decode failure: the frame ended early or a
// varint was invalid. A shared instance keeps the error path off the
// decode hot path's allocation budget.
var errMalformed = &Error{Code: CodeBadRequest, Message: "transport: truncated or malformed binary frame"}

// Dec decodes values out of one frame payload. Errors are sticky: the
// first short read marks the decoder bad, every later read returns zero
// values, and Err reports the failure once at the end — so decode
// sequences read straight-line without per-field error checks. Byte-view
// accessors (Bytes, and the strings StringReuse can avoid copying)
// alias the frame buffer and are only valid until it is reused.
type Dec struct {
	buf []byte
	off int
	bad bool
}

// NewDec returns a decoder positioned at the start of payload.
func NewDec(payload []byte) Dec { return Dec{buf: payload} }

// Err reports whether any read so far ran off the frame.
func (d *Dec) Err() error {
	if d.bad {
		return errMalformed
	}
	return nil
}

// Len returns the number of undecoded bytes remaining.
func (d *Dec) Len() int { return len(d.buf) - d.off }

// Rest returns the remaining undecoded bytes as a view and consumes
// them.
func (d *Dec) Rest() []byte {
	b := d.buf[d.off:]
	d.off = len(d.buf)
	return b
}

// Off returns the current decode offset; Seek rewinds to one (used by
// decode-into codecs that need a second pass over a section).
func (d *Dec) Off() int { return d.off }

// Seek repositions the decoder at off (an offset previously returned by
// Off).
func (d *Dec) Seek(off int) {
	if off < 0 || off > len(d.buf) {
		d.bad = true
		return
	}
	d.off = off
}

// Byte reads one byte.
func (d *Dec) Byte() byte {
	if d.bad || d.off >= len(d.buf) {
		d.bad = true
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.bad {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zig-zag varint.
func (d *Dec) Varint() int64 {
	if d.bad {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.off += n
	return v
}

// Float64 reads 8 fixed little-endian bytes as a float64.
func (d *Dec) Float64() float64 {
	if d.bad || d.off+8 > len(d.buf) {
		d.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return math.Float64frombits(v)
}

// Bytes reads a length-prefixed byte section as a view into the frame.
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.bad || n > uint64(len(d.buf)-d.off) {
		d.bad = true
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// String reads a length-prefixed string (copying out of the frame).
func (d *Dec) String() string { return string(d.Bytes()) }

// StringReuse reads a length-prefixed string, returning old when the
// decoded bytes equal it — the comparison is allocation-free, so a
// decode-into loop over steady data keeps its existing strings instead
// of copying every frame.
func (d *Dec) StringReuse(old string) string {
	b := d.Bytes()
	if old == string(b) {
		return old
	}
	return string(b)
}

// wireBuf is a pooled grow-only scratch buffer for frame payloads.
type wireBuf struct{ b []byte }

var wireBufPool = sync.Pool{
	New: func() interface{} { return &wireBuf{b: make([]byte, 0, 4096)} },
}

// getBuf takes a scratch buffer from the pool (length 0).
func getBuf() *wireBuf {
	pb := wireBufPool.Get().(*wireBuf)
	pb.b = pb.b[:0]
	return pb
}

// putBuf returns a scratch buffer to the pool. Buffers grown past 1 MiB
// are dropped instead, so one giant frame does not pin its memory in the
// pool forever.
func putBuf(pb *wireBuf) {
	if cap(pb.b) > 1<<20 {
		return
	}
	wireBufPool.Put(pb)
}

// writeFrameBytes writes one length-prefixed binary frame: the same
// 4-byte big-endian length envelope as the JSON protocols, carrying an
// opaque payload instead of a JSON document.
func writeFrameBytes(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrameInto reads one length-prefixed frame into *buf — growing it
// only when a frame exceeds its capacity, exactly like ReadFrameBuf —
// and returns the payload as a view into it, valid until the next call.
func readFrameInto(r io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	// Bounds-check before the int conversion, as ReadFrameBuf does.
	if binary.BigEndian.Uint32(hdr[:]) > MaxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", binary.BigEndian.Uint32(hdr[:]))
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
