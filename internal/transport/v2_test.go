package transport

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"
)

type addReq struct {
	A int `json:"a"`
	B int `json:"b"`
}

type addResp struct {
	Sum int `json:"sum"`
}

func dialV2(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestV2TypedRoundTrip(t *testing.T) {
	srv := NewServer()
	Handle(srv, "math.add", func(_ context.Context, req addReq) (addResp, error) {
		return addResp{Sum: req.A + req.B}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := dialV2(t, addr)
	var resp addResp
	if err := c.CallV2(context.Background(), "math.add", addReq{A: 19, B: 23}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Sum != 42 {
		t.Fatalf("sum = %d", resp.Sum)
	}
}

func TestV2StructuredErrorCode(t *testing.T) {
	srv := NewServer()
	Handle(srv, "fail.coded", func(context.Context, struct{}) (struct{}, error) {
		return struct{}{}, Errf(CodeUnavailable, "deliberately unavailable")
	})
	Handle(srv, "fail.plain", func(context.Context, struct{}) (struct{}, error) {
		return struct{}{}, context.Canceled // a non-*Error error
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := dialV2(t, addr)

	err = c.CallV2(context.Background(), "fail.coded", nil, nil)
	if ErrorCode(err) != CodeUnavailable || !strings.Contains(err.Error(), "deliberately") {
		t.Fatalf("err = %v", err)
	}
	// Unknown op gets its own code.
	err = c.CallV2(context.Background(), "no.such.op", nil, nil)
	if ErrorCode(err) != CodeUnknownOp {
		t.Fatalf("unknown op err = %v", err)
	}
}

func TestV2BadRequestBody(t *testing.T) {
	srv := NewServer()
	Handle(srv, "math.add", func(_ context.Context, req addReq) (addResp, error) {
		return addResp{Sum: req.A + req.B}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := dialV2(t, addr)
	// A request body of the wrong shape must fail decoding server-side.
	err = c.CallV2(context.Background(), "math.add", map[string]string{"a": "NaN"}, nil)
	if ErrorCode(err) != CodeBadRequest {
		t.Fatalf("err = %v", err)
	}
}

func TestV2OpsListBuiltin(t *testing.T) {
	srv := NewServer()
	Handle(srv, "x.one", func(context.Context, struct{}) (struct{}, error) { return struct{}{}, nil })
	srv.Handle("y.two", func(Request) Response { return Response{OK: true} })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := dialV2(t, addr)
	var ol OpsList
	if err := c.CallV2(context.Background(), "ops.list", nil, &ol); err != nil {
		t.Fatal(err)
	}
	// Both generations appear, sorted.
	want := []string{"ops.list", "x.one", "y.two"}
	if len(ol.Ops) != len(want) {
		t.Fatalf("ops = %v", ol.Ops)
	}
	for i, op := range want {
		if ol.Ops[i] != op {
			t.Fatalf("ops = %v, want %v", ol.Ops, want)
		}
	}
}

// TestV2DeadlinePropagation: the client's remaining context budget
// reaches the handler as a real context deadline.
func TestV2DeadlinePropagation(t *testing.T) {
	srv := NewServer()
	Handle(srv, "deadline.check", func(ctx context.Context, _ struct{}) (map[string]bool, error) {
		_, ok := ctx.Deadline()
		return map[string]bool{"hasDeadline": ok}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := dialV2(t, addr)

	var got map[string]bool
	if err := c.CallV2(context.Background(), "deadline.check", nil, &got); err != nil {
		t.Fatal(err)
	}
	if got["hasDeadline"] {
		t.Fatal("deadline present without one being set")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.CallV2(ctx, "deadline.check", nil, &got); err != nil {
		t.Fatal(err)
	}
	if !got["hasDeadline"] {
		t.Fatal("deadline not propagated to handler")
	}
}

// TestV2ExpiredContextClientSide: a dead context fails before any I/O.
func TestV2ExpiredContextClientSide(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := dialV2(t, addr)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
	defer cancel()
	if err := c.CallV2(ctx, "ops.list", nil, nil); ErrorCode(err) != CodeDeadline {
		t.Fatalf("err = %v", err)
	}
}

// TestMixedGenerationsOneConnection: v1 and v2 frames interleave on a
// single connection against a server registering both kinds of handler
// under one op name.
func TestMixedGenerationsOneConnection(t *testing.T) {
	srv := NewServer()
	srv.Handle("echo", func(req Request) Response {
		return Response{OK: true, Payload: req.Params["msg"]}
	})
	Handle(srv, "echo", func(_ context.Context, req map[string]string) (map[string]string, error) {
		return map[string]string{"msg": req["msg"]}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := dialV2(t, addr)
	for i := 0; i < 5; i++ {
		// v1 call...
		got, err := c.Call("echo", map[string]string{"msg": "old"})
		if err != nil || got != "old" {
			t.Fatalf("v1 call = %q, %v", got, err)
		}
		// ...then a v2 call on the same connection.
		var resp map[string]string
		if err := c.CallV2(context.Background(), "echo", map[string]string{"msg": "new"}, &resp); err != nil {
			t.Fatal(err)
		}
		if resp["msg"] != "new" {
			t.Fatalf("v2 call = %v", resp)
		}
	}
}

// TestV2CancellationUnblocks: cancelling a deadline-less context
// unblocks a call stuck on a slow handler, with the canceled code.
func TestV2CancellationUnblocks(t *testing.T) {
	srv := NewServer()
	release := make(chan struct{})
	Handle(srv, "slow.op", func(context.Context, struct{}) (struct{}, error) {
		<-release
		return struct{}{}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { close(release); srv.Close() })
	c := dialV2(t, addr)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() { done <- c.CallV2(ctx, "slow.op", nil, nil) }()
	select {
	case err := <-done:
		if ErrorCode(err) != CodeCanceled {
			t.Fatalf("err = %v, want canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("CallV2 did not unblock on cancellation")
	}
}

// TestV2AgainstV1OnlyServer: a v2 call to a server that only speaks the
// v1 protocol fails loudly with the protocol code instead of silently
// mis-executing (an old server would ignore the typed body and run the
// op with empty params).
func TestV2AgainstV1OnlyServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// A pre-v2 server: decode as v1 Request, answer with a v1
		// Response (no "v" field on the wire).
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			return
		}
		WriteFrame(conn, Response{OK: true, Payload: "unconstrained result"})
	}()
	c := dialV2(t, ln.Addr().String())
	err = c.CallV2(context.Background(), "hawkeye.query", map[string]string{"constraint": "x"}, nil)
	if ErrorCode(err) != CodeProtocol {
		t.Fatalf("err = %v, want protocol_mismatch", err)
	}
}
